#!/usr/bin/env python
"""IPv6 aggressive-scanner detection — the paper's future work.

The paper leaves "analysis of heavy IPv6 scanners" to future work,
noting (after Richter et al., IMC'22) that IPv6 scanning is driven by
hitlists rather than space sweeps.  This example runs the IPv6
extension end-to-end: build a synthetic hitlist with realistic address
patterns, let a skewed scanner population probe it, observe the probes
that land on dark (stale) entries, and detect the hitlist-coverage
aggressive hitters with the same event/ECDF machinery as IPv4.

Usage::

    python examples/ipv6_hitlist_scanning.py
"""

import numpy as np

from repro.analysis.tables import format_table, render_percent
from repro.ipv6 import (
    Ipv6Telescope,
    build_hitlist,
    build_ipv6_population,
    detect_ipv6_hitters,
    format_ipv6,
)
from repro.ipv6.hitlist import HitlistConfig


def main() -> None:
    hitlist = build_hitlist(HitlistConfig(seed=2023))
    telescope = Ipv6Telescope(hitlist=hitlist)
    print(
        f"Hitlist: {len(hitlist):,} entries across "
        f"{hitlist.config.prefix_count} /48s; {hitlist.dark_size:,} entries "
        f"({render_percent(hitlist.dark_size / len(hitlist), 1)}) point into "
        "dark space — the telescope's aperture."
    )
    rows = [
        [pattern.value, str(count)]
        for pattern, count in hitlist.pattern_counts().items()
    ]
    print(format_table(["address pattern", "entries"], rows, align_right=False))

    rng = np.random.default_rng(4242)
    population = build_ipv6_population(rng, duration=7 * 86_400.0)
    print(f"\nScanner population: {len(population)} sources "
          "(a few heavy hitlist sweepers over a long tail).")

    detection = detect_ipv6_hitters(telescope, population)
    print(
        f"Telescope captured {len(detection.capture.packets):,} probes, "
        f"{len(detection.events):,} events."
    )

    hitters = detection.hitters(1)
    truth = {s.src for s in population if s.behavior == "v6-aggressive"}
    print(
        f"\nDefinition-1 (hitlist-coverage) AH: {len(hitters)} sources; "
        f"{len(hitters & truth)}/{len(truth)} of the ground-truth heavy "
        "sweepers detected:"
    )
    for address in sorted(hitters):
        marker = "aggressive" if address in truth else "pattern-miner"
        print(f"  {format_ipv6(address):40s} ({marker})")


if __name__ == "__main__":
    main()
