#!/usr/bin/env python
"""Network-impact study: the paper's §4 over the Flows-1 week.

Simulates the January 2022 week at the Merit-like ISP: detects the
aggressive hitters in the darknet, joins them with sampled NetFlow at
the three core routers, and reports the Table 2/3 views — daily impact
percentages (note the weekend bump and the router-1 skew) and the
darknet-vs-flows protocol consistency check.

Usage::

    python examples/network_impact_study.py      # ~1 minute
"""

from repro import flows_week_scenario, run_study
from repro.analysis.tables import format_table, render_count, render_percent
from repro.core.impact import average_impact


def main() -> None:
    print("Simulating the Flows-1 week (this takes about a minute)...")
    report = run_study(flows_week_scenario())

    # ------------------------------------------------------------------
    # Table 2: daily AH impact per router.
    # ------------------------------------------------------------------
    cells = report.impact_cells(definition=1)
    by_day = {}
    for cell in cells:
        by_day.setdefault(cell.day, {})[cell.router] = cell
    rows = []
    for day in sorted(by_day):
        row = [report.clock.label(day)]
        for router in sorted(by_day[day]):
            cell = by_day[day][router]
            row.append(
                f"{render_count(cell.ah_packets)} ({render_percent(cell.fraction)})"
            )
        rows.append(row)
    averages = average_impact(cells)
    rows.append(
        ["Average"]
        + [
            f"{render_count(p)} ({render_percent(f)})"
            for p, f in averages.values()
        ]
    )
    print()
    print(
        format_table(
            ["Date", "Router-1", "Router-2", "Router-3"],
            rows,
            title="Daily AH packet volume and share per core router",
            align_right=False,
        )
    )
    weekend = [
        c.fraction for c in cells if c.router == 0 and report.clock.is_weekend(c.day)
    ]
    weekday = [
        c.fraction
        for c in cells
        if c.router == 0 and not report.clock.is_weekend(c.day)
    ]
    print(
        f"\nRouter-1 weekend average {render_percent(sum(weekend) / len(weekend))} vs "
        f"weekday {render_percent(sum(weekday) / len(weekday))} — scanning is "
        "constant while legitimate traffic dips on weekends."
    )

    # ------------------------------------------------------------------
    # Table 3: protocol mix, darknet vs flows.
    # ------------------------------------------------------------------
    protocol = report.protocol_table()
    rows = []
    for proto in ("TCP-SYN", "UDP", "ICMP Ech Rqst"):
        row = [proto]
        for definition in (1, 2, 3):
            dark = protocol[definition]["darknet"][proto]
            flow = protocol[definition]["flows"][proto]
            row.append(f"{render_percent(dark, 1)} / {render_percent(flow, 1)}")
        rows.append(row)
    print()
    print(
        format_table(
            ["Protocol", "Def 1 (D/F)", "Def 2 (D/F)", "Def 3 (D/F)"],
            rows,
            title="AH protocol mix: darknet vs router flows (consistency check)",
            align_right=False,
        )
    )
    print(
        "\nThe darknet and flow columns agree: the AH flow volume is "
        "scanning, not legitimate traffic from the same addresses."
    )

    # ------------------------------------------------------------------
    # Table 8: how much of the AH population does each router see?
    # ------------------------------------------------------------------
    coverage = report.router_coverage_table()[1]
    rows = [
        [report.clock.label(r["day"]), str(r["active_ah"])]
        + [render_percent(f, 1) for f in r["seen_fraction"]]
        for r in coverage
    ]
    print()
    print(
        format_table(
            ["Day", "# AH", "Router-1", "Router-2", "Router-3"],
            rows,
            title="Share of the day's active AH observed at each router",
            align_right=False,
        )
    )


if __name__ == "__main__":
    main()
