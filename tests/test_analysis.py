"""Unit tests for the presentation helpers (tables and figures)."""

import pytest

from repro.analysis.figures import downsample, series_stats, sparkline
from repro.analysis.tables import format_table, render_count, render_percent


class TestTables:
    def test_render_percent(self):
        assert render_percent(0.0415) == "4.15%"
        assert render_percent(0.5, digits=0) == "50%"

    def test_render_count(self):
        assert render_count(15_200_000_000) == "15.2B"
        assert render_count(15_200_000) == "15.2M"
        assert render_count(1_500) == "1.5k"
        assert render_count(999) == "999"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "444"]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_format_table_title(self):
        text = format_table(["x"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_left_alignment(self):
        text = format_table(["name"], [["ab"]], align_right=False)
        assert "ab  " in text or text.splitlines()[-1].startswith("ab")


class TestFigures:
    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_downsampled_width(self):
        assert len(sparkline(range(1_000), width=40)) == 40

    def test_series_stats(self):
        stats = series_stats([1, 2, 3, 4])
        assert stats["n"] == 4
        assert stats["min"] == 1 and stats["max"] == 4
        assert stats["mean"] == pytest.approx(2.5)

    def test_series_stats_empty(self):
        assert series_stats([]) == {"n": 0}

    def test_downsample_mean(self):
        out = downsample([1, 3, 5, 7], 2)
        assert out.tolist() == [2.0, 6.0]

    def test_downsample_max_sum(self):
        assert downsample([1, 3, 5, 7], 2, "max").tolist() == [3.0, 7.0]
        assert downsample([1, 3, 5, 7], 2, "sum").tolist() == [4.0, 12.0]

    def test_downsample_truncates_remainder(self):
        assert downsample([1, 2, 3], 2).tolist() == [1.5]

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            downsample([1], 0)
        with pytest.raises(ValueError):
            downsample([1, 2], 2, "median")
