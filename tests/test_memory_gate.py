"""Memory gate: the streaming pipeline's peak allocation is bounded.

With lazy generation, an end-to-end streaming run (generate -> events
-> detection) holds one chunk, the open generation spans, the open-flow
table, and the (small) detection state — never the capture.  The gate
pins that from two sides:

* tripling the capture length barely moves the peak (it is O(chunk +
  open state), not O(capture)), and
* the peak stays below what merely *materializing* the same capture's
  packet columns would occupy.

Constants are generous — the gate is here to catch a reintroduced
O(capture) term (a full materialization, an unbounded cache), not to
police allocator noise.
"""

import tracemalloc

import numpy as np

from repro.core.streaming import stream_detect
from repro.fingerprint import Tool
from repro.net.prefix import PrefixSet
from repro.packet import Protocol
from repro.scanners.base import (
    ScanMode,
    Scanner,
    ScanSession,
    View,
    emit_population,
)
from repro.telescope.chunks import LazyCaptureSource

CHUNK_SECONDS = 3_600.0
TIMEOUT = 1_200.0
HOUR = 3_600.0


def _view() -> View:
    return View("darknet", PrefixSet.parse(["10.0.0.0/20"]))


def _population(horizon: float) -> list:
    """A small population active over the whole horizon.

    RATE sessions dominate the packet count (their volume grows linearly
    with the horizon — exactly the term the gate must prove is never
    resident all at once); one long COVERAGE session exercises the
    whole-span cache path.
    """
    scanners = [
        Scanner(
            src=0x0B000001 + i,
            behavior="gate-rate",
            sessions=[
                ScanSession(
                    start=0.0,
                    duration=horizon,
                    ports=np.array([23]),
                    proto=Protocol.TCP_SYN,
                    tool=Tool.OTHER,
                    mode=ScanMode.RATE,
                    rate_pps=1e6,
                )
            ],
            seed=100 + i,
        )
        for i in range(3)
    ]
    scanners.append(
        Scanner(
            src=0x0C000001,
            behavior="gate-coverage",
            sessions=[
                ScanSession(
                    start=0.0,
                    duration=horizon,
                    ports=np.array([80, 443]),
                    proto=Protocol.TCP_SYN,
                    tool=Tool.ZMAP,
                    mode=ScanMode.COVERAGE,
                    coverage=0.6,
                )
            ],
            seed=200,
        )
    )
    return scanners


def _streaming_peak(horizon: float) -> tuple:
    """(peak traced bytes, packets) of a full streaming run."""
    scanners = _population(horizon)
    view = _view()
    source = LazyCaptureSource.from_population(
        scanners, view, CHUNK_SECONDS, window=(0.0, horizon)
    )
    seen = [0]

    def batches():
        for chunk in source:
            seen[0] += len(chunk)
            yield chunk.packets

    tracemalloc.start()
    events, _ = stream_detect(
        batches(), TIMEOUT, 4_096, None, day_seconds=86_400.0
    )
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert len(events.src) > 0
    return peak, seen[0]


def _materialized_bytes(horizon: float) -> tuple:
    """(packet-column bytes, packets) of the materialized capture."""
    batch = emit_population(_population(horizon), _view(), (0.0, horizon))
    size = sum(
        getattr(batch, column).nbytes
        for column in ("ts", "src", "dst", "dport", "proto", "ipid")
    )
    return size, len(batch)


def test_streaming_peak_does_not_scale_with_capture():
    short_peak, short_packets = _streaming_peak(12 * HOUR)
    long_peak, long_packets = _streaming_peak(36 * HOUR)
    # 3x the packets ...
    assert long_packets > 2.5 * short_packets
    # ... but nowhere near 3x the peak.  1.6x + fixed slack absorbs
    # allocator noise while still failing hard on any O(capture) term.
    assert long_peak < 1.6 * short_peak + 2_000_000, (
        f"streaming peak scales with capture length: "
        f"{short_peak:,} B at 12h vs {long_peak:,} B at 36h"
    )


def test_streaming_peak_below_materialized_capture():
    horizon = 36 * HOUR
    peak, streamed = _streaming_peak(horizon)
    materialized, packets = _materialized_bytes(horizon)
    assert streamed == packets
    assert peak < materialized, (
        f"streaming peak {peak:,} B should undercut even the bare "
        f"column bytes of the materialized capture ({materialized:,} B)"
    )
