"""Unit tests for the population builder and origin sampling."""

import numpy as np
import pytest

from repro.net.asn import ASType
from repro.net.prefix import Prefix, PrefixSet
from repro.scanners.origins import (
    AGGRESSIVE_AFFINITY,
    BACKGROUND_AFFINITY,
    RESEARCH_AFFINITY,
    OriginSampler,
)
from repro.scanners.population import PopulationConfig, build_population


@pytest.fixture(scope="module")
def small_population(small_internet_module):
    internet = small_internet_module
    dark = PrefixSet([Prefix.parse("5.0.0.0/20")]).ranges()
    config = PopulationConfig(
        seed=3,
        duration=5 * 86_400.0,
        n_sweepers=15,
        n_mirai_aggressive=5,
        n_mirai_small=30,
        n_omniscanners=2,
        omni_port_low=100,
        omni_port_high=300,
        n_multiport=8,
        n_small_scanners=100,
        n_misconfig=80,
        acked_fleet_scale=1.0,
    )
    return build_population(internet, dark, config)


@pytest.fixture(scope="module")
def small_internet_module():
    from repro.net.internet import InternetConfig, build_internet

    return build_internet(InternetConfig(seed=99, core_as_count=40, tail_as_count=30))


class TestOriginSampler:
    def test_aggressive_skews_to_us_cloud(self, small_internet_module, rng):
        sampler = OriginSampler(small_internet_module, AGGRESSIVE_AFFINITY)
        idx = sampler.sample_as_indexes(rng, 3_000)
        systems = small_internet_module.registry.systems
        us_cloud = sum(
            1
            for i in idx
            if systems[i].as_type is ASType.CLOUD and systems[i].country == "US"
        )
        share = us_cloud / len(idx)
        # US cloud ASes are a small minority of ASes but a large share
        # of aggressive-scanner origins.
        as_share = sum(
            1
            for s in systems
            if s.as_type is ASType.CLOUD and s.country == "US"
        ) / len(systems)
        assert share > 2 * as_share

    def test_background_roughly_uniform(self, small_internet_module, rng):
        sampler = OriginSampler(small_internet_module, BACKGROUND_AFFINITY)
        idx = sampler.sample_as_indexes(rng, 5_000)
        # Every AS should be reachable.
        assert len(np.unique(idx)) > 0.5 * len(small_internet_module.registry)

    def test_distinct_sources(self, small_internet_module, rng):
        sampler = OriginSampler(small_internet_module, RESEARCH_AFFINITY)
        used: set = set()
        a = sampler.sample_sources(rng, 50, used)
        b = sampler.sample_sources(rng, 50, used)
        assert len(set(a.tolist()) | set(b.tolist())) == 100

    def test_sources_resolve_to_registry(self, small_internet_module, rng):
        sampler = OriginSampler(small_internet_module, BACKGROUND_AFFINITY)
        srcs = sampler.sample_sources(rng, 100)
        idx = small_internet_module.registry.lookup_index(srcs)
        assert np.all(idx >= 0)


class TestPopulation:
    def test_counts_match_config(self, small_population):
        by = small_population.by_behavior
        assert len(by["masscan-sweep"]) == 15
        assert len(by["mirai"]) == 5
        assert len(by["mirai-small"]) == 30
        assert len(by["omniscanner"]) == 2
        assert len(by["multiport"]) == 8
        assert len(by["small-scan"]) == 100
        assert len(by["misconfig"]) == 80

    def test_sources_unique(self, small_population):
        srcs = small_population.sources()
        assert len(np.unique(srcs)) == len(srcs)

    def test_acked_registry_built(self, small_population):
        acked = small_population.acked
        assert len(acked.orgs) == 36
        assert len(acked.all_fleet_ips()) > 0
        # The published snapshot is a strict subset of the fleets.
        assert acked.published_ips() <= acked.all_fleet_ips()

    def test_research_scanners_have_orgs(self, small_population):
        research = small_population.by_behavior.get("research", [])
        assert research
        assert all(s.org is not None for s in research)
        fleet_ips = small_population.acked.all_fleet_ips()
        assert all(int(s.src) in fleet_ips for s in research)

    def test_scanners_for_subset(self, small_population):
        wanted = {int(s.src) for s in small_population.scanners[:7]}
        picked = small_population.scanners_for(wanted)
        assert {int(s.src) for s in picked} == wanted

    def test_ground_truth_aggressive(self, small_population):
        truth = small_population.ground_truth_aggressive()
        behaviors = {"masscan-sweep", "mirai", "research", "omniscanner"}
        expected = {
            int(s.src)
            for b in behaviors
            for s in small_population.by_behavior.get(b, [])
        }
        assert truth == expected

    def test_deterministic(self, small_internet_module):
        dark = PrefixSet([Prefix.parse("5.0.0.0/20")]).ranges()
        config = PopulationConfig(
            seed=9, duration=3 * 86_400.0, n_sweepers=5, n_mirai_aggressive=2,
            n_mirai_small=5, n_omniscanners=1, omni_port_low=50,
            omni_port_high=80, n_multiport=2, n_small_scanners=10,
            n_misconfig=10, acked_fleet_scale=1.0,
        )
        a = build_population(small_internet_module, dark, config)
        b = build_population(small_internet_module, dark, config)
        assert a.sources().tolist() == b.sources().tolist()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PopulationConfig(duration=0.0)
