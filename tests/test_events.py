"""Unit tests for the darknet event builder."""

import numpy as np
import pytest

from repro.core.events import (
    EventTable,
    build_events,
    port_counts_from_triples,
)
from repro.packet import PacketBatch, Protocol


def _packets(rows):
    """rows: (ts, src, dst, dport, proto)."""
    arr = np.array(rows, dtype=np.float64)
    return PacketBatch(
        ts=arr[:, 0],
        src=arr[:, 1].astype(np.uint32),
        dst=arr[:, 2].astype(np.uint32),
        dport=arr[:, 3].astype(np.uint16),
        proto=arr[:, 4].astype(np.uint8),
        ipid=np.zeros(len(rows), dtype=np.uint16),
    )


TCP = Protocol.TCP_SYN.value
UDP = Protocol.UDP.value


class TestGrouping:
    def test_single_event(self):
        batch = _packets([(0, 1, 10, 80, TCP), (5, 1, 11, 80, TCP), (9, 1, 10, 80, TCP)])
        events = build_events(batch, timeout=60.0)
        assert len(events) == 1
        assert events.packets[0] == 3
        assert events.unique_dsts[0] == 2
        assert events.start[0] == 0 and events.end[0] == 9

    def test_distinct_ports_distinct_events(self):
        batch = _packets([(0, 1, 10, 80, TCP), (1, 1, 10, 443, TCP)])
        events = build_events(batch, timeout=60.0)
        assert len(events) == 2
        assert set(events.dport.tolist()) == {80, 443}

    def test_distinct_protocols_distinct_events(self):
        batch = _packets([(0, 1, 10, 53, TCP), (1, 1, 10, 53, UDP)])
        events = build_events(batch, timeout=60.0)
        assert len(events) == 2

    def test_distinct_sources_distinct_events(self):
        batch = _packets([(0, 1, 10, 80, TCP), (1, 2, 10, 80, TCP)])
        events = build_events(batch, timeout=60.0)
        assert len(events) == 2
        assert set(events.src.tolist()) == {1, 2}

    def test_timeout_splits(self):
        batch = _packets([(0, 1, 10, 80, TCP), (100, 1, 11, 80, TCP)])
        events = build_events(batch, timeout=50.0)
        assert len(events) == 2
        merged = build_events(batch, timeout=150.0)
        assert len(merged) == 1

    def test_gap_exactly_timeout_does_not_split(self):
        batch = _packets([(0, 1, 10, 80, TCP), (50, 1, 11, 80, TCP)])
        events = build_events(batch, timeout=50.0)
        assert len(events) == 1

    def test_unsorted_input(self):
        batch = _packets([(9, 1, 10, 80, TCP), (0, 1, 11, 80, TCP), (5, 1, 12, 80, TCP)])
        events = build_events(batch, timeout=60.0)
        assert len(events) == 1
        assert events.start[0] == 0 and events.end[0] == 9

    def test_empty(self):
        assert len(build_events(PacketBatch.empty(), 10.0)) == 0

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            build_events(PacketBatch.empty(), 0.0)

    def test_long_scan_not_split(self):
        # A slow scan with inter-arrivals below the timeout stays one
        # event no matter how long it runs (the paper's design goal).
        ts = np.arange(0, 100_000, 400.0)
        n = len(ts)
        batch = PacketBatch(
            ts=ts,
            src=np.full(n, 1, dtype=np.uint32),
            dst=np.arange(n, dtype=np.uint32),
            dport=np.full(n, 23, dtype=np.uint16),
            proto=np.full(n, TCP, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        )
        events = build_events(batch, timeout=600.0)
        assert len(events) == 1
        assert events.packets[0] == n


class TestEventTable:
    def test_invariants_pass_on_built_table(self, tiny_result):
        tiny_result.events.validate_invariants()

    def test_sources_of(self):
        batch = _packets([(0, 1, 10, 80, TCP), (1, 2, 10, 80, TCP)])
        events = build_events(batch, timeout=60.0)
        assert events.sources_of() == {1, 2}

    def test_events_for(self):
        batch = _packets([(0, 1, 10, 80, TCP), (1, 2, 10, 80, TCP)])
        events = build_events(batch, timeout=60.0)
        sub = events.events_for({2})
        assert len(sub) == 1 and sub.src[0] == 2
        assert len(events.events_for(set())) == 0

    def test_start_day(self):
        batch = _packets([(10, 1, 10, 80, TCP), (86_500, 1, 11, 443, TCP)])
        events = build_events(batch, timeout=60.0)
        days = sorted(events.start_day(86_400.0).tolist())
        assert days == [0, 1]

    def test_daily_port_counts(self):
        batch = _packets(
            [
                (0, 1, 10, 80, TCP),
                (1, 1, 10, 443, TCP),
                (86_500, 1, 10, 80, TCP),
                (2, 2, 10, 80, TCP),
            ]
        )
        events = build_events(batch, timeout=60.0)
        counts = events.daily_port_counts(86_400.0)
        assert counts[(1, 0)] == 2
        assert counts[(1, 1)] == 1
        assert counts[(2, 0)] == 1

    def test_daily_port_counts_span_days(self):
        # One long event overlapping two days counts on both.
        batch = _packets([(86_000, 1, 10, 80, TCP), (86_600, 1, 11, 80, TCP)])
        events = build_events(batch, timeout=1_000.0)
        counts = events.daily_port_counts(86_400.0)
        assert counts[(1, 0)] == 1 and counts[(1, 1)] == 1

    def test_empty_table(self):
        table = EventTable.empty()
        assert len(table) == 0
        assert table.daily_port_counts(86_400.0) == {}

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EventTable(
                src=np.array([1], dtype=np.uint32),
                dport=np.array([], dtype=np.uint16),
                proto=np.array([6], dtype=np.uint8),
                start=np.array([0.0]),
                end=np.array([1.0]),
                packets=np.array([1]),
                unique_dsts=np.array([1]),
            )


class TestStreamingSupport:
    """Helpers added for the streaming pipeline: concat, canonical
    order, and mergeable daily-port triples."""

    def _table(self):
        return build_events(
            _packets(
                [
                    (0, 2, 10, 80, 6),
                    (5, 1, 11, 23, 6),
                    (700, 1, 12, 23, 6),
                    (90_000, 1, 13, 23, 6),
                ]
            ),
            timeout=60.0,
        )

    def test_concat(self):
        table = self._table()
        first = table.select(np.array([0]))
        rest = table.select(np.arange(1, len(table)))
        merged = EventTable.concat([first, EventTable.empty(), rest])
        assert len(merged) == len(table)
        assert merged.src.tolist() == table.src.tolist()

    def test_concat_empty(self):
        assert len(EventTable.concat([])) == 0
        assert len(EventTable.concat([EventTable.empty()])) == 0

    def test_sorted_canonical_matches_builder_order(self):
        table = self._table()
        rng = np.random.default_rng(0)
        shuffled = table.select(rng.permutation(len(table)))
        restored = shuffled.sorted_canonical()
        for column in ("src", "dport", "proto", "start", "end"):
            assert (
                getattr(restored, column).tolist()
                == getattr(table, column).tolist()
            ), column

    def test_daily_port_triples_unique_and_sorted(self):
        table = self._table()
        src, day, port_proto = table.daily_port_triples(86_400.0)
        triples = list(zip(src.tolist(), day.tolist(), port_proto.tolist()))
        assert triples == sorted(set(triples))

    def test_port_counts_tolerate_duplicate_triples(self):
        table = self._table()
        src, day, port_proto = table.daily_port_triples(86_400.0)
        doubled = port_counts_from_triples(
            np.concatenate([src, src]),
            np.concatenate([day, day]),
            np.concatenate([port_proto, port_proto]),
        )
        assert doubled == table.daily_port_counts(86_400.0)

    def test_port_counts_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert port_counts_from_triples(empty, empty, empty) == {}
