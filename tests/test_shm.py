"""Tests for the shared-memory columnar hand-off (repro.io.shm).

The contract: shared memory is pure *transport*.  For any worker
count, schedule mode, fault plan, or interrupt/resume sequence, a run
whose shards travelled as named-segment handles is bit-identical to
the pickled hand-off and to serial — and every segment is unlinked by
the time the entry point returns, crash or no crash.
"""

import pickle
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.core.engine import DetectionEngine
from repro.core.faults import FaultPlan, RetryPolicy, ShardFailedError
from repro.io.shm import (
    SHM_MIN_BYTES,
    SegmentLease,
    ShmBatch,
    ShmBatchList,
    resolve_batch,
    resolve_batches,
    share_batch,
    share_shard_batches,
    shared_memory_available,
    want_shared_memory,
)
from repro.packet import COLUMNS, PacketBatch, Protocol
from repro.parallel import parallel_detect
from tests.test_parallel import _CONFIG, _DARK_SIZE, _random_capture, _reference
from tests.test_streaming import (
    _assert_detections_identical,
    _assert_tables_identical,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="platform has no usable shared memory",
)

TCP = Protocol.TCP_SYN.value


def _batch(n, seed=0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * 5_000.0),
        src=rng.integers(1, 50, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _assert_batches_equal(a: PacketBatch, b: PacketBatch):
    for name in COLUMNS:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))


def _segment_gone(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


class TestRoundTrip:
    def test_blocks_round_trip_through_pickle(self):
        shards = [[_batch(500, 1), _batch(3, 2)], [], [_batch(1, 3)]]
        handles, lease = share_shard_batches(shards)
        with lease:
            for shard, handle in zip(
                shards, pickle.loads(pickle.dumps(handles))
            ):
                loaded = resolve_batches(handle)
                assert len(loaded) == len(shard)
                for a, b in zip(shard, loaded):
                    _assert_batches_equal(a, b)
        assert _segment_gone(handles[0].segment)

    def test_views_are_read_only(self):
        handles, lease = share_shard_batches([[_batch(16)]])
        with lease:
            (loaded,) = handles[0].load()
            for name in COLUMNS:
                column = getattr(loaded, name)
                assert not column.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    column[0] = 0

    def test_views_are_zero_copy(self):
        # Columns alias the segment mapping, not per-batch allocations.
        handles, lease = share_shard_batches([[_batch(64)]])
        with lease:
            (loaded,) = handles[0].load()
            assert loaded.ts.base.obj is loaded.src.base.obj

    def test_empty_batch_and_empty_shard(self):
        shards = [[PacketBatch.empty()], []]
        handles, lease = share_shard_batches(shards)
        with lease:
            (empty,) = handles[0].load()
            assert len(empty) == 0
            assert handles[1].load() == []

    def test_single_packet_batch(self):
        one = _batch(1, 9)
        handle, lease = share_batch(one)
        with lease:
            _assert_batches_equal(one, resolve_batch(handle))

    def test_resolve_passthrough(self):
        batches = [_batch(4)]
        assert resolve_batches(batches) is batches
        assert resolve_batch(batches[0]) is batches[0]

    def test_lease_close_is_idempotent(self):
        handles, lease = share_shard_batches([[_batch(8)]])
        lease.close()
        lease.close()
        assert _segment_gone(handles[0].segment)


class TestPolicy:
    def test_forced_off_always_pickles(self):
        assert not want_shared_memory(False, True, 10 * SHM_MIN_BYTES)

    def test_forced_on_ignores_size_and_pool_kind(self):
        assert want_shared_memory(True, True, 0)
        assert want_shared_memory(True, False, 0)

    def test_auto_requires_processes_and_size(self):
        assert not want_shared_memory(None, False, 10 * SHM_MIN_BYTES)
        assert not want_shared_memory(None, True, SHM_MIN_BYTES - 1)
        assert want_shared_memory(None, True, SHM_MIN_BYTES)


class TestEngineIngest:
    def test_engine_ingests_handles_like_batches(self):
        batch = _batch(2_000, 7)
        plain = DetectionEngine(600.0, _DARK_SIZE, _CONFIG, workers=2)
        shared = DetectionEngine(600.0, _DARK_SIZE, _CONFIG, workers=2)
        for _, _, chunk in batch.iter_time_chunks(500.0):
            handle, lease = share_batch(chunk)
            with lease:
                shared.ingest(handle)
            plain.ingest(chunk)
        events_a, detections_a = plain.finish()
        events_b, detections_b = shared.finish()
        _assert_tables_identical(events_a, events_b)
        _assert_detections_identical(detections_a, detections_b)


# ----------------------------------------------------------------------
# The acceptance property: transport never changes results.
# ----------------------------------------------------------------------

_BATCH = _random_capture(41, n=6_000)
_REF_EVENTS, _REF_DETECTIONS = _reference(_BATCH)


def _chunks():
    return (c for _, _, c in _BATCH.iter_time_chunks(3_600.0))


def _detect(**kwargs):
    return parallel_detect(
        _chunks(), 600.0, _DARK_SIZE, _CONFIG, use_processes=False, **kwargs
    )


class TestShmDetectionIdentity:
    @settings(deadline=None, max_examples=16)
    @given(
        workers=st.integers(1, 8),
        schedule=st.sampled_from(["static", "packed", "stealing"]),
        victim=st.integers(0, 7),
        kill=st.booleans(),
    )
    def test_shm_equals_serial_any_workers_any_schedule(
        self, workers, schedule, victim, kill
    ):
        """Forced shared-memory hand-off, 1..8 workers, every schedule
        mode, with and without an injected kill: bit-identical to the
        fault-free serial reference."""
        plan = (
            FaultPlan(kill={victim % workers: 1}) if kill else FaultPlan()
        )
        result = _detect(
            workers=workers,
            schedule=schedule,
            shm=True,
            fault_plan=plan,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
        )
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    @settings(deadline=None, max_examples=8)
    @given(workers=st.integers(2, 8), victim=st.integers(0, 7))
    def test_shm_interrupt_then_resume_identical(self, workers, victim):
        """Interrupt (zero retry budget) and resume with the segment
        hand-off on: the rerun completes only the missing shards and
        matches serial — and no segment outlives either attempt."""
        with tempfile.TemporaryDirectory() as run_dir:
            with pytest.raises(ShardFailedError):
                _detect(
                    workers=workers,
                    shm=True,
                    retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                    fault_plan=FaultPlan(kill={victim % workers: 1}),
                    checkpoint_dir=run_dir,
                )
            result = _detect(
                workers=workers, shm=True, checkpoint_dir=run_dir
            )
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    @pytest.mark.parametrize("schedule", ["static", "stealing"])
    def test_shm_across_real_processes(self, schedule):
        """Cross-process attach: workers map the parent's segment."""
        result = parallel_detect(
            _chunks(),
            600.0,
            _DARK_SIZE,
            _CONFIG,
            workers=2,
            schedule=schedule,
            shm=True,
            use_processes=True,
        )
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    def test_segment_cleaned_after_worker_abort(self):
        """A hard worker abort (BrokenProcessPool + pool respawn) still
        ends with the parent unlinking its segment."""
        import repro.io.shm as shm_module

        created = []
        original = shm_module.share_shard_batches

        def recording(shards, label="detect"):
            handles, lease = original(shards, label)
            created.append(handles[0].segment if handles else lease.name)
            return handles, lease

        shm_module.share_shard_batches = recording
        # parallel.py binds the name at import time; patch both.
        import repro.parallel as parallel_module

        parallel_module.share_shard_batches = recording
        try:
            result = parallel_detect(
                _chunks(),
                600.0,
                _DARK_SIZE,
                _CONFIG,
                workers=2,
                shm=True,
                use_processes=True,
                fault_plan=FaultPlan(abort={1: 1}),
                retry=RetryPolicy(max_retries=2, backoff_seconds=0.0),
            )
        finally:
            shm_module.share_shard_batches = original
            parallel_module.share_shard_batches = original
        _assert_tables_identical(result.events, _REF_EVENTS)
        assert created and all(_segment_gone(name) for name in created)
