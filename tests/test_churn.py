"""Unit tests for the AH-list churn analysis."""

import numpy as np
import pytest

from repro.core.churn import (
    ChurnPoint,
    churn_summary,
    daily_churn,
    staleness,
    survival_curve,
)
from repro.core.detection import DetectionResult


def make_detection(daily_active, daily_new=None):
    sources = set()
    for day_sources in daily_active.values():
        sources |= day_sources
    return DetectionResult(
        definition=1,
        sources=sources,
        threshold=0.0,
        daily_new=daily_new or {},
        daily_active=daily_active,
    )


class TestDailyChurn:
    def test_basic_transitions(self):
        detection = make_detection(
            {0: {1, 2, 3}, 1: {2, 3, 4}, 2: {5}}
        )
        points = daily_churn(detection)
        assert len(points) == 2
        first = points[0]
        assert first.day == 1
        assert first.retained == 2
        assert first.arrived == 1
        assert first.departed == 1
        assert first.retention == pytest.approx(2 / 3)
        assert first.jaccard_with_previous == pytest.approx(2 / 4)
        second = points[1]
        assert second.retained == 0
        assert second.retention == 0.0

    def test_single_day_no_points(self):
        assert daily_churn(make_detection({0: {1}})) == []

    def test_full_retention(self):
        detection = make_detection({0: {1, 2}, 1: {1, 2}})
        points = daily_churn(detection)
        assert points[0].retention == 1.0
        assert points[0].jaccard_with_previous == 1.0


class TestSurvival:
    def test_curve_shape(self):
        daily_new = {0: {1, 2}, 1: {3}}
        daily_active = {
            0: {1, 2},
            1: {1, 3},
            2: {1},
            3: {1},
        }
        detection = make_detection(daily_active, daily_new)
        curve = survival_curve(detection, max_days=3)
        assert curve[0] == 1.0
        # Day +1: src1 survives (of {1,2}), src3's horizon covers +1 and
        # +2: at risk {1,2,3} -> survivors {1}.
        assert curve[1] == pytest.approx(1 / 3)
        # Lag-2: src3 is censored after its 2-day horizon; of
        # {1, 2, 3} at risk only src1 survives.
        assert curve[2] == pytest.approx(1 / 3)
        # Lag-3: only {1, 2} are at risk; src1 survives.
        assert curve[3] == pytest.approx(1 / 2)
        assert np.all(curve <= 1.0)

    def test_empty(self):
        detection = make_detection({}, {})
        assert survival_curve(detection).tolist() == [1.0]

    def test_invalid_max_days(self):
        with pytest.raises(ValueError):
            survival_curve(make_detection({0: {1}}), max_days=0)

    def test_censoring(self):
        # A source appearing on the final day never enters later lags.
        daily_new = {0: {1}, 2: {2}}
        daily_active = {0: {1}, 1: {1}, 2: {1, 2}}
        detection = make_detection(daily_active, daily_new)
        curve = survival_curve(detection, max_days=2)
        assert curve[2] == 1.0  # only src1 at risk at lag 2, and active


class TestStaleness:
    def test_fresh_list_when_no_churn(self):
        detection = make_detection({d: {1, 2} for d in range(6)})
        assert staleness(detection, refresh_days=2) == 1.0

    def test_stale_list_decays(self):
        daily_active = {d: {d} for d in range(6)}  # total churn daily
        detection = make_detection(daily_active)
        assert staleness(detection, refresh_days=2) == 0.0

    def test_invalid_refresh(self):
        with pytest.raises(ValueError):
            staleness(make_detection({0: {1}}), 0)

    def test_short_series(self):
        assert staleness(make_detection({0: {1}}), 7) == 1.0


class TestSummaryAndScenario:
    def test_summary_keys(self):
        detection = make_detection({0: {1, 2}, 1: {2, 3}})
        summary = churn_summary(detection)
        assert summary["days"] == 1
        assert 0 <= summary["mean_retention"] <= 1
        assert summary["mean_arrivals"] == 1.0

    def test_summary_empty(self):
        assert churn_summary(make_detection({0: {1}}))["days"] == 0

    def test_tiny_scenario_churn(self, tiny_result):
        detection = tiny_result.detections[1]
        points = daily_churn(detection)
        assert points
        # Careers span a couple of days: real but partial retention.
        retentions = [p.retention for p in points]
        assert 0.0 < max(retentions) <= 1.0
        curve = survival_curve(detection, max_days=3)
        assert curve[0] == 1.0
        assert curve[-1] <= 1.0
