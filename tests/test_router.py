"""Unit tests for routing policy and region mapping."""

import numpy as np
import pytest

from repro.flows.router import BorderRouter, RoutingPolicy, region_of


class TestRegions:
    @pytest.mark.parametrize(
        "country,region",
        [
            ("CN", "asia"),
            ("KR", "asia"),
            ("DE", "europe"),
            ("RU", "europe"),
            ("US", "americas"),
            ("BR", "americas"),
            ("ZA", "other"),
            ("??", "other"),
        ],
    )
    def test_region_of(self, country, region):
        assert region_of(country) == region


class TestRoutingPolicy:
    def test_default_policy_shape(self):
        policy = RoutingPolicy.default_three_router()
        assert len(policy.routers) == 3
        assert policy.routers[0].name == "Router-1"

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RoutingPolicy(
                routers=(BorderRouter("r", 0),),
                region_weights={"asia": (0.5,)},
            )

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            RoutingPolicy(
                routers=(BorderRouter("a", 0), BorderRouter("b", 1)),
                region_weights={"asia": (1.0,)},
            )

    def test_deterministic_assignment(self):
        policy = RoutingPolicy.default_three_router()
        assert policy.router_of(12345, "CN") == policy.router_of(12345, "CN")

    def test_asia_skews_to_router_one(self):
        policy = RoutingPolicy.default_three_router()
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 2**32, 5_000)
        assignments = np.array([policy.router_of(int(s), "CN") for s in srcs])
        share = np.mean(assignments == 0)
        assert 0.55 < share < 0.70  # policy weight 0.62

    def test_americas_skews_away_from_router_one(self):
        policy = RoutingPolicy.default_three_router()
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 2**32, 5_000)
        assignments = np.array([policy.router_of(int(s), "US") for s in srcs])
        assert np.mean(assignments == 2) > np.mean(assignments == 0)

    def test_single_router_policy(self):
        policy = RoutingPolicy.single_router()
        assert policy.router_of(999, "CN") == 0
        assert policy.router_of(999, "US") == 0

    def test_assign_vector(self):
        policy = RoutingPolicy.default_three_router()
        srcs = np.array([1, 2, 3], dtype=np.uint32)
        out = policy.assign(srcs, ["CN", "US", "DE"])
        assert out.dtype == np.int8
        assert len(out) == 3

    def test_assign_mismatched(self):
        policy = RoutingPolicy.single_router()
        with pytest.raises(ValueError):
            policy.assign(np.array([1]), ["CN", "US"])

    def test_expected_share(self):
        policy = RoutingPolicy.default_three_router()
        assert policy.expected_share("asia", 0) == pytest.approx(0.62)
