"""Unit tests for routing policy and region mapping."""

import numpy as np
import pytest

from repro.flows.router import BorderRouter, RoutingPolicy, region_of


class TestRegions:
    @pytest.mark.parametrize(
        "country,region",
        [
            ("CN", "asia"),
            ("KR", "asia"),
            ("DE", "europe"),
            ("RU", "europe"),
            ("US", "americas"),
            ("BR", "americas"),
            ("ZA", "other"),
            ("??", "other"),
        ],
    )
    def test_region_of(self, country, region):
        assert region_of(country) == region


class TestRoutingPolicy:
    def test_default_policy_shape(self):
        policy = RoutingPolicy.default_three_router()
        assert len(policy.routers) == 3
        assert policy.routers[0].name == "Router-1"

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RoutingPolicy(
                routers=(BorderRouter("r", 0),),
                region_weights={"asia": (0.5,)},
            )

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            RoutingPolicy(
                routers=(BorderRouter("a", 0), BorderRouter("b", 1)),
                region_weights={"asia": (1.0,)},
            )

    def test_deterministic_assignment(self):
        policy = RoutingPolicy.default_three_router()
        assert policy.router_of(12345, "CN") == policy.router_of(12345, "CN")

    def test_asia_skews_to_router_one(self):
        policy = RoutingPolicy.default_three_router()
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 2**32, 5_000)
        assignments = np.array([policy.router_of(int(s), "CN") for s in srcs])
        share = np.mean(assignments == 0)
        assert 0.55 < share < 0.70  # policy weight 0.62

    def test_americas_skews_away_from_router_one(self):
        policy = RoutingPolicy.default_three_router()
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 2**32, 5_000)
        assignments = np.array([policy.router_of(int(s), "US") for s in srcs])
        assert np.mean(assignments == 2) > np.mean(assignments == 0)

    def test_single_router_policy(self):
        policy = RoutingPolicy.single_router()
        assert policy.router_of(999, "CN") == 0
        assert policy.router_of(999, "US") == 0

    def test_assign_vector(self):
        policy = RoutingPolicy.default_three_router()
        srcs = np.array([1, 2, 3], dtype=np.uint32)
        out = policy.assign(srcs, ["CN", "US", "DE"])
        assert out.dtype == np.int8
        assert len(out) == 3

    def test_assign_mismatched(self):
        policy = RoutingPolicy.single_router()
        with pytest.raises(ValueError):
            policy.assign(np.array([1]), ["CN", "US"])

    def test_expected_share(self):
        policy = RoutingPolicy.default_three_router()
        assert policy.expected_share("asia", 0) == pytest.approx(0.62)


class TestVectorizedAssignment:
    """The vectorized paths must match the scalar references exactly."""

    COUNTRIES = ["CN", "US", "DE", "ZA", "JP", "BR", "??"]

    def _random_inputs(self, n=5_000, seed=3):
        rng = np.random.default_rng(seed)
        srcs = rng.integers(0, 2**32, n, dtype=np.uint64).astype(np.uint32)
        countries = [self.COUNTRIES[i] for i in rng.integers(0, len(self.COUNTRIES), n)]
        return srcs, countries

    def test_assign_matches_router_of(self):
        policy = RoutingPolicy.default_three_router()
        srcs, countries = self._random_inputs()
        for block in (0, 3, 7):
            vec = policy.assign(srcs, countries, block=block)
            scalar = np.array(
                [
                    policy.router_of(int(s), c, block=block)
                    for s, c in zip(srcs, countries)
                ],
                dtype=np.int8,
            )
            assert np.array_equal(vec, scalar)

    def test_assign_equality_edges(self):
        # u == cumulative weight exactly: the scalar loop's strict
        # comparison must be reproduced by the vectorized count.  The
        # mix hash is an odd multiply xor a constant mod 2**32, so it
        # can be inverted to construct a source that lands exactly on
        # the 0.5 boundary.
        policy = RoutingPolicy(
            routers=(BorderRouter("a", 0), BorderRouter("b", 1)),
            region_weights={r: (0.5, 0.5) for r in ("asia", "europe", "americas", "other")},
        )
        inverse = pow(2654435761, -1, 2**32)
        edge_src = ((2**31 ^ 0x9E3779B9) * inverse) % 2**32
        assert policy._uniform_of(edge_src) == 0.5
        srcs = np.array([edge_src], dtype=np.uint32)
        vec = policy.assign(srcs, ["US"])
        assert vec[0] == policy.router_of(edge_src, "US")

    def test_assign_empty(self):
        policy = RoutingPolicy.default_three_router()
        out = policy.assign(np.empty(0, dtype=np.uint32), [])
        assert len(out) == 0
        assert out.dtype == np.int8

    def test_router_mix_matrix_matches_scalar(self):
        policy = RoutingPolicy.default_three_router()
        srcs, countries = self._random_inputs(n=500, seed=11)
        block_sizes = [4096.0] * 8
        matrix = policy.router_mix_matrix(srcs, countries, block_sizes)
        assert matrix.shape == (500, 3)
        for i in range(0, 500, 37):
            expected = policy.router_mix(int(srcs[i]), countries[i], block_sizes)
            assert np.array_equal(matrix[i], expected)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_router_mix_matrix_mismatched(self):
        policy = RoutingPolicy.single_router()
        with pytest.raises(ValueError):
            policy.router_mix_matrix(np.array([1]), ["CN", "US"], [1.0])
