"""Tests for the streaming heavy-hitter sketches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch import KMV, HeavyHitterSketch, SpaceSaving, _mix64
from repro.packet import PacketBatch, Protocol


class TestMix64:
    def test_deterministic_and_distinct(self):
        values = np.arange(1_000, dtype=np.uint64)
        hashed = _mix64(values)
        assert np.array_equal(hashed, _mix64(values))
        assert len(np.unique(hashed)) == 1_000

    def test_avalanche_roughly_uniform(self):
        hashed = _mix64(np.arange(100_000, dtype=np.uint64))
        # Normalized hashes should be close to uniform on [0, 1).
        normalized = hashed / 2**64
        assert abs(normalized.mean() - 0.5) < 0.01


class TestKMV:
    def test_exact_below_k(self):
        kmv = KMV(k=32)
        kmv.add_hashes(_mix64(np.arange(10, dtype=np.uint64)))
        assert kmv.estimate() == 10.0

    def test_estimates_large_cardinality(self):
        kmv = KMV(k=256)
        kmv.add_hashes(_mix64(np.arange(50_000, dtype=np.uint64)))
        estimate = kmv.estimate()
        assert abs(estimate - 50_000) < 0.25 * 50_000

    def test_duplicates_ignored(self):
        kmv = KMV(k=16)
        hashes = _mix64(np.arange(8, dtype=np.uint64))
        kmv.add_hashes(hashes)
        kmv.add_hashes(hashes)
        assert kmv.estimate() == 8.0

    def test_incremental_equals_batch(self):
        hashes = _mix64(np.arange(5_000, dtype=np.uint64))
        a, b = KMV(k=64), KMV(k=64)
        a.add_hashes(hashes)
        for chunk in np.array_split(hashes, 7):
            b.add_hashes(chunk)
        assert a.estimate() == b.estimate()

    def test_k_validated(self):
        with pytest.raises(ValueError):
            KMV(k=1)


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        counter = SpaceSaving(capacity=10)
        for key, n in ((1, 5), (2, 3), (3, 1)):
            for _ in range(n):
                counter.offer(key)
        assert counter.count_of(1) == (5, 0)
        assert counter.count_of(2) == (3, 0)
        assert counter.top(2)[0][0] == 1

    def test_overestimation_bound(self):
        rng = np.random.default_rng(0)
        counter = SpaceSaving(capacity=50)
        # Heavy keys + a long tail.
        stream = np.concatenate(
            [
                np.repeat(np.arange(5), 2_000),
                rng.integers(100, 10_000, 20_000),
            ]
        )
        rng.shuffle(stream)
        truth: dict = {}
        for key in stream:
            truth[int(key)] = truth.get(int(key), 0) + 1
            counter.offer(int(key))
        bound = counter.total / counter.capacity
        for key, count, error in counter.top(50):
            assert count >= truth.get(key, 0)  # never undercounts
            assert count - truth.get(key, 0) <= bound
            assert error <= bound

    def test_heavy_keys_retained(self):
        rng = np.random.default_rng(1)
        counter = SpaceSaving(capacity=100)
        stream = np.concatenate(
            [np.repeat(777, 5_000), rng.integers(1_000, 50_000, 30_000)]
        )
        rng.shuffle(stream)
        for key in stream:
            counter.offer(int(key))
        guaranteed = counter.guaranteed_heavy(threshold=3_000)
        assert 777 in guaranteed

    def test_capacity_respected(self):
        counter = SpaceSaving(capacity=5)
        for key in range(100):
            counter.offer(key)
        assert len(counter) == 5

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            SpaceSaving(10).offer(1, weight=0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)


class TestHeavyHitterSketch:
    def _batch(self, src, dst, proto=Protocol.TCP_SYN):
        n = len(src)
        return PacketBatch(
            ts=np.arange(n, dtype=np.float64),
            src=np.asarray(src, dtype=np.uint32),
            dst=np.asarray(dst, dtype=np.uint32),
            dport=np.full(n, 23, dtype=np.uint16),
            proto=np.full(n, proto.value, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        )

    def test_disperse_source_detected(self):
        sketch = HeavyHitterSketch(capacity=64, kmv_size=64)
        # Source 1: 2000 distinct destinations; source 2: one dst, often.
        sketch.add_batch(self._batch(np.full(2_000, 1), np.arange(2_000)))
        sketch.add_batch(self._batch(np.full(2_000, 2), np.full(2_000, 9)))
        candidates = sketch.candidates(dispersion_threshold=500)
        assert 1 in candidates
        assert 2 not in candidates
        assert abs(candidates[1] - 2_000) < 800

    def test_backscatter_excluded(self):
        sketch = HeavyHitterSketch(capacity=16)
        sketch.add_batch(
            self._batch(np.full(100, 5), np.arange(100), Protocol.TCP_SYNACK)
        )
        assert sketch.total_packets == 0
        assert sketch.tracked == 0

    def test_memory_bounded(self):
        rng = np.random.default_rng(2)
        sketch = HeavyHitterSketch(capacity=128, kmv_size=16)
        for _ in range(5):
            sketch.add_batch(
                self._batch(
                    rng.integers(0, 100_000, 5_000),
                    rng.integers(0, 8_192, 5_000),
                )
            )
        assert sketch.tracked <= 128

    def test_against_exact_definition1(self, tiny_result):
        """Sketch candidates recover the exact def-1 population."""
        capture = tiny_result.capture
        threshold = 0.1 * tiny_result.telescope.size
        sketch = HeavyHitterSketch(capacity=512, kmv_size=128)
        # Feed in day-sized chunks, as a live deployment would.
        for day in range(tiny_result.scenario.days):
            sketch.add_batch(capture.day_slice(day, 86_400.0))
        candidates = set(sketch.candidates(threshold * 0.8))
        exact = tiny_result.detections[1].sources
        recall = len(exact & candidates) / len(exact)
        assert recall > 0.9
        # Candidates are a pre-filter: allowed to be broader, but not
        # unboundedly so.
        assert len(candidates) < 5 * len(exact) + 10


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400))
@settings(max_examples=50)
def test_space_saving_never_undercounts(stream):
    counter = SpaceSaving(capacity=8)
    truth: dict = {}
    for key in stream:
        truth[key] = truth.get(key, 0) + 1
        counter.offer(key)
    for key, count, _ in counter.top(8):
        assert count >= truth[key]
    assert counter.total == len(stream)


@given(st.sets(st.integers(min_value=0, max_value=2**32 - 1), max_size=300))
@settings(max_examples=50)
def test_kmv_exact_in_small_regime(values):
    kmv = KMV(k=512)
    kmv.add_hashes(_mix64(np.array(sorted(values), dtype=np.uint64)))
    assert kmv.estimate() == len(values)
