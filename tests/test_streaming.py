"""Tests for the incremental (streaming) event builder and detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.core.streaming import (
    StreamingDetector,
    StreamingEventBuilder,
    chunked_events,
    stream_detect,
    tables_equivalent,
)
from repro.packet import PacketBatch, Protocol
from tests.test_events import _packets

_EVENT_COLUMNS = (
    "src", "dport", "proto", "start", "end", "packets", "unique_dsts",
)


def _assert_tables_identical(a, b):
    """Array-equal comparison, column by column (not just equivalent)."""
    assert len(a) == len(b)
    for column in _EVENT_COLUMNS:
        assert np.array_equal(getattr(a, column), getattr(b, column)), column


def _assert_detections_identical(a, b):
    for definition in (1, 2, 3):
        assert a[definition].sources == b[definition].sources
        assert a[definition].threshold == b[definition].threshold
        assert a[definition].daily_new == b[definition].daily_new
        assert a[definition].daily_active == b[definition].daily_active

TCP = Protocol.TCP_SYN.value


class TestBasics:
    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            StreamingEventBuilder(0.0)

    def test_single_chunk_matches_batch(self):
        batch = _packets(
            [(0, 1, 10, 80, TCP), (5, 1, 11, 80, TCP), (700, 1, 12, 80, TCP)]
        )
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(batch)
        streamed = builder.finish()
        assert tables_equivalent(streamed, build_events(batch, 60.0))

    def test_flow_survives_chunk_boundary(self):
        # Packets 10s apart split across two chunks: one event.
        first = _packets([(0, 1, 10, 80, TCP)])
        second = _packets([(10, 1, 11, 80, TCP)])
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(first)
        builder.add_batch(second)
        events = builder.finish()
        assert len(events) == 1
        assert events.packets[0] == 2
        assert events.unique_dsts[0] == 2

    def test_flow_expires_across_chunks(self):
        first = _packets([(0, 1, 10, 80, TCP)])
        second = _packets([(1_000, 1, 11, 80, TCP)])
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(first)
        builder.add_batch(second)
        events = builder.finish()
        assert len(events) == 2

    def test_out_of_order_chunk_rejected(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(100, 1, 10, 80, TCP)]))
        with pytest.raises(ValueError):
            builder.add_batch(_packets([(50, 2, 10, 80, TCP)]))

    def test_empty_batches_ignored(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(PacketBatch.empty())
        assert builder.watermark is None
        assert len(builder.finish()) == 0

    def test_backscatter_filtered(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(
            _packets([(0, 1, 80, 80, Protocol.TCP_SYNACK.value)])
        )
        assert builder.open_flows == 0
        assert len(builder.finish()) == 0


class TestDrain:
    def test_drain_consumes_finalized(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(0, 1, 10, 80, TCP)]))
        builder.add_batch(_packets([(1_000, 2, 10, 80, TCP)]))
        drained = builder.drain_finalized()
        assert len(drained) == 1
        assert drained.src[0] == 1
        # Already-drained events are gone; only the open flow remains.
        assert len(builder.drain_finalized()) == 0
        assert len(builder.finalized_events()) == 0
        final = builder.finish()
        assert len(final) == 1
        assert final.src[0] == 2

    def test_closed_counter_survives_drain(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(0, 1, 10, 80, TCP)]))
        builder.add_batch(_packets([(1_000, 2, 10, 80, TCP)]))
        assert builder.closed_events == 1
        builder.drain_finalized()
        assert builder.closed_events == 1

    def test_peak_open_flows(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(
            _packets([(0, 1, 10, 80, TCP), (0.5, 2, 10, 23, TCP)])
        )
        builder.add_batch(_packets([(1_000, 3, 10, 80, TCP)]))
        # Two flows were live at once even though only one is now.
        assert builder.open_flows == 1
        assert builder.peak_open_flows == 2


class TestTelemetry:
    def test_open_flow_count(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(
            _packets([(0, 1, 10, 80, TCP), (0.5, 2, 10, 23, TCP)])
        )
        assert builder.open_flows == 2
        # A later chunk expires both.
        builder.add_batch(_packets([(1_000, 3, 10, 80, TCP)]))
        assert builder.open_flows == 1
        assert builder.closed_events == 2

    def test_watermark_advances(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(5, 1, 10, 80, TCP)]))
        assert builder.watermark == 5
        builder.add_batch(_packets([(9, 1, 10, 80, TCP)]))
        assert builder.watermark == 9

    def test_early_emission(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(0, 1, 10, 80, TCP)]))
        builder.add_batch(_packets([(1_000, 2, 10, 80, TCP)]))
        final = builder.finalized_events()
        assert len(final) == 1  # src 1 expired; src 2 still open
        assert final.src[0] == 1
        # finish() still returns everything.
        assert len(builder.finish()) == 2


class TestEquivalenceWithBatchBuilder:
    def test_chunked_equivalence_on_scenario(self, tiny_result):
        batch = tiny_result.capture.packets
        timeout = tiny_result.telescope.default_timeout()
        streamed = chunked_events(batch, timeout, chunk_seconds=7_200.0)
        batched = build_events(batch, timeout)
        assert tables_equivalent(streamed, batched)

    def test_chunk_size_irrelevant(self):
        rng = np.random.default_rng(4)
        n = 3_000
        batch = PacketBatch(
            ts=np.sort(rng.random(n) * 50_000.0),
            src=rng.integers(1, 40, n).astype(np.uint32),
            dst=rng.integers(0, 64, n).astype(np.uint32),
            dport=rng.choice(np.array([23, 80], dtype=np.uint16), n),
            proto=np.full(n, TCP, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        )
        coarse = chunked_events(batch, timeout=300.0, chunk_seconds=25_000.0)
        fine = chunked_events(batch, timeout=300.0, chunk_seconds=100.0)
        assert tables_equivalent(coarse, fine)
        assert tables_equivalent(fine, build_events(batch, 300.0))

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunked_events(PacketBatch.empty(), 60.0, 0.0)


# ----------------------------------------------------------------------
# Property: any chunking reproduces the batch builder exactly.
# ----------------------------------------------------------------------

packet_rows = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5_000, allow_nan=False),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=20),
        st.sampled_from([22, 23, 80]),
    ),
    min_size=1,
    max_size=120,
)


@given(packet_rows, st.floats(min_value=10.0, max_value=2_000.0),
       st.floats(min_value=50.0, max_value=6_000.0))
@settings(max_examples=60)
def test_streaming_equals_batch(rows, timeout, chunk_seconds):
    batch = _packets([(ts, s, d, p, TCP) for ts, s, d, p in rows])
    streamed = chunked_events(batch, timeout, chunk_seconds)
    batched = build_events(batch, timeout)
    assert tables_equivalent(streamed, batched)


# ----------------------------------------------------------------------
# Incremental detection
# ----------------------------------------------------------------------

_DARK_SIZE = 64
_DETECT_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)


def _random_capture(seed, n=20_000, duration=400_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 200, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


class TestStreamingDetector:
    def _batch_reference(self, batch, timeout=600.0):
        events = build_events(batch, timeout)
        return events, detect_all(events, _DARK_SIZE, _DETECT_CONFIG)

    def test_matches_batch(self):
        batch = _random_capture(11)
        ref_events, ref_detections = self._batch_reference(batch)
        detector = StreamingDetector(600.0, _DARK_SIZE, _DETECT_CONFIG)
        for _, _, chunk in batch.iter_time_chunks(3_600.0):
            detector.add_batch(chunk)
        events, detections = detector.finish()
        _assert_tables_identical(events, ref_events)
        _assert_detections_identical(detections, ref_detections)

    def test_stream_detect_helper(self):
        batch = _random_capture(12)
        ref_events, ref_detections = self._batch_reference(batch)
        events, detections = stream_detect(
            (c for _, _, c in batch.iter_time_chunks(7_200.0)),
            600.0,
            _DARK_SIZE,
            _DETECT_CONFIG,
        )
        _assert_tables_identical(events, ref_events)
        _assert_detections_identical(detections, ref_detections)

    def test_bounded_state(self):
        # With a timeout much smaller than the capture span, the open
        # state is a small fraction of the event population.
        batch = _random_capture(13)
        detector = StreamingDetector(600.0, _DARK_SIZE, _DETECT_CONFIG)
        for _, _, chunk in batch.iter_time_chunks(3_600.0):
            detector.add_batch(chunk)
        events, _ = detector.finish()
        assert 0 < detector.peak_open_flows < len(events) // 4
        assert detector.open_flows == 0  # finish flushed everything

    def test_chunk_reports(self):
        batch = _random_capture(14, n=5_000)
        detector = StreamingDetector(600.0, _DARK_SIZE, _DETECT_CONFIG)
        reports = [
            detector.add_batch(chunk)
            for _, _, chunk in batch.iter_time_chunks(3_600.0)
        ]
        assert sum(r.packets for r in reports) == len(batch)
        events, _ = detector.finish()
        assert sum(r.events_finalized for r in reports) <= len(events)
        assert reports[-1].watermark == float(batch.ts.max())

    def test_snapshot(self):
        detector = StreamingDetector(600.0, _DARK_SIZE, _DETECT_CONFIG)
        snap = detector.snapshot()
        assert snap["packets"] == 0
        assert snap["volume_threshold"] is None
        detector.add_batch(_random_capture(15, n=2_000))
        detector.builder._expire_before(float("inf"))
        detector._fold(detector.builder.drain_finalized())
        snap = detector.snapshot()
        assert snap["packets"] == 2_000
        assert snap["events_finalized"] > 0
        assert snap["volume_threshold"] is not None

    def test_finish_twice_raises(self):
        detector = StreamingDetector(600.0, _DARK_SIZE)
        detector.finish()
        with pytest.raises(RuntimeError):
            detector.finish()

    def test_add_after_finish_raises(self):
        detector = StreamingDetector(600.0, _DARK_SIZE)
        detector.finish()
        with pytest.raises(RuntimeError):
            detector.add_batch(PacketBatch.empty())

    def test_empty_capture(self):
        detector = StreamingDetector(600.0, _DARK_SIZE, _DETECT_CONFIG)
        events, detections = detector.finish()
        assert len(events) == 0
        ref = detect_all(build_events(PacketBatch.empty(), 600.0),
                         _DARK_SIZE, _DETECT_CONFIG)
        _assert_detections_identical(detections, ref)


# Property: for any chunking, all three definitions produce the same
# AH sets (and thresholds) as batch detection over the whole capture.
@given(
    packet_rows,
    st.floats(min_value=10.0, max_value=2_000.0),
    st.floats(min_value=50.0, max_value=6_000.0),
)
@settings(max_examples=40)
def test_detector_chunking_invariant(rows, timeout, chunk_seconds):
    batch = _packets([(ts, s, d, p, TCP) for ts, s, d, p in rows])
    ref = detect_all(
        build_events(batch, timeout), _DARK_SIZE, _DETECT_CONFIG
    )
    detector = StreamingDetector(timeout, _DARK_SIZE, _DETECT_CONFIG)
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        detector.add_batch(chunk)
    _, detections = detector.finish()
    _assert_detections_identical(detections, ref)


class TestPortDayStateCompaction:
    """Bounded Definition-3 state for long-lived (serve) detectors."""

    _DAY = 86_400.0

    def _tables(self):
        # A few distinct event tables, replayed many times: the set of
        # distinct (src, day, port) triples stays tiny while the number
        # of update() calls grows without bound.
        tables = []
        for day in range(3):
            base = day * self._DAY
            rows = [
                (base + 10.0 * i, src, i % 7, port, TCP)
                for i, (src, port) in enumerate(
                    (s, p) for s in (1, 2, 3) for p in (22, 80, 443)
                )
            ]
            tables.append(build_events(_packets(rows), 60.0))
        return tables

    @staticmethod
    def _stored_triples(state):
        return sum(len(run[0]) for run in state._runs)

    def test_memory_flat_and_counts_identical(self):
        from repro.core.streaming import PortDayState

        compacted = PortDayState(self._DAY)
        unbounded = PortDayState(self._DAY)
        # Instance attribute shadows the class threshold: this copy
        # keeps every run, as the pre-compaction code did.
        unbounded.COMPACT_AFTER = 10**9

        tables = self._tables()
        rounds = 8 * PortDayState.COMPACT_AFTER
        for i in range(rounds):
            table = tables[i % len(tables)]
            compacted.update(table)
            unbounded.update(table)

        assert len(unbounded._runs) == rounds
        assert len(compacted._runs) < PortDayState.COMPACT_AFTER
        # Memory is bounded by distinct triples, not update() calls.
        assert (
            self._stored_triples(compacted)
            < self._stored_triples(unbounded) / 4
        )
        assert compacted.counts() == unbounded.counts()
        assert compacted.counts()  # non-trivial state

    def test_merge_triggers_compaction_and_preserves_counts(self):
        from repro.core.streaming import PortDayState

        tables = self._tables()
        half = PortDayState.COMPACT_AFTER // 2 + 1

        left = PortDayState(self._DAY)
        right = PortDayState(self._DAY)
        reference = PortDayState(self._DAY)
        reference.COMPACT_AFTER = 10**9
        for i in range(half):
            left.update(tables[i % len(tables)])
            right.update(tables[(i + 1) % len(tables)])
            reference.update(tables[i % len(tables)])
            reference.update(tables[(i + 1) % len(tables)])

        assert len(left._runs) == half  # below threshold: untouched
        left.merge(right)
        assert len(left._runs) < PortDayState.COMPACT_AFTER
        assert left.counts() == reference.counts()
