"""Tests for the incremental (streaming) event builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import build_events
from repro.core.streaming import (
    StreamingEventBuilder,
    chunked_events,
    tables_equivalent,
)
from repro.packet import PacketBatch, Protocol
from tests.test_events import _packets

TCP = Protocol.TCP_SYN.value


class TestBasics:
    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            StreamingEventBuilder(0.0)

    def test_single_chunk_matches_batch(self):
        batch = _packets(
            [(0, 1, 10, 80, TCP), (5, 1, 11, 80, TCP), (700, 1, 12, 80, TCP)]
        )
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(batch)
        streamed = builder.finish()
        assert tables_equivalent(streamed, build_events(batch, 60.0))

    def test_flow_survives_chunk_boundary(self):
        # Packets 10s apart split across two chunks: one event.
        first = _packets([(0, 1, 10, 80, TCP)])
        second = _packets([(10, 1, 11, 80, TCP)])
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(first)
        builder.add_batch(second)
        events = builder.finish()
        assert len(events) == 1
        assert events.packets[0] == 2
        assert events.unique_dsts[0] == 2

    def test_flow_expires_across_chunks(self):
        first = _packets([(0, 1, 10, 80, TCP)])
        second = _packets([(1_000, 1, 11, 80, TCP)])
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(first)
        builder.add_batch(second)
        events = builder.finish()
        assert len(events) == 2

    def test_out_of_order_chunk_rejected(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(100, 1, 10, 80, TCP)]))
        with pytest.raises(ValueError):
            builder.add_batch(_packets([(50, 2, 10, 80, TCP)]))

    def test_empty_batches_ignored(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(PacketBatch.empty())
        assert builder.watermark is None
        assert len(builder.finish()) == 0

    def test_backscatter_filtered(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(
            _packets([(0, 1, 80, 80, Protocol.TCP_SYNACK.value)])
        )
        assert builder.open_flows == 0
        assert len(builder.finish()) == 0


class TestTelemetry:
    def test_open_flow_count(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(
            _packets([(0, 1, 10, 80, TCP), (0.5, 2, 10, 23, TCP)])
        )
        assert builder.open_flows == 2
        # A later chunk expires both.
        builder.add_batch(_packets([(1_000, 3, 10, 80, TCP)]))
        assert builder.open_flows == 1
        assert builder.closed_events == 2

    def test_watermark_advances(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(5, 1, 10, 80, TCP)]))
        assert builder.watermark == 5
        builder.add_batch(_packets([(9, 1, 10, 80, TCP)]))
        assert builder.watermark == 9

    def test_early_emission(self):
        builder = StreamingEventBuilder(timeout=60.0)
        builder.add_batch(_packets([(0, 1, 10, 80, TCP)]))
        builder.add_batch(_packets([(1_000, 2, 10, 80, TCP)]))
        final = builder.finalized_events()
        assert len(final) == 1  # src 1 expired; src 2 still open
        assert final.src[0] == 1
        # finish() still returns everything.
        assert len(builder.finish()) == 2


class TestEquivalenceWithBatchBuilder:
    def test_chunked_equivalence_on_scenario(self, tiny_result):
        batch = tiny_result.capture.packets
        timeout = tiny_result.telescope.default_timeout()
        streamed = chunked_events(batch, timeout, chunk_seconds=7_200.0)
        batched = build_events(batch, timeout)
        assert tables_equivalent(streamed, batched)

    def test_chunk_size_irrelevant(self):
        rng = np.random.default_rng(4)
        n = 3_000
        batch = PacketBatch(
            ts=np.sort(rng.random(n) * 50_000.0),
            src=rng.integers(1, 40, n).astype(np.uint32),
            dst=rng.integers(0, 64, n).astype(np.uint32),
            dport=rng.choice(np.array([23, 80], dtype=np.uint16), n),
            proto=np.full(n, TCP, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        )
        coarse = chunked_events(batch, timeout=300.0, chunk_seconds=25_000.0)
        fine = chunked_events(batch, timeout=300.0, chunk_seconds=100.0)
        assert tables_equivalent(coarse, fine)
        assert tables_equivalent(fine, build_events(batch, 300.0))

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunked_events(PacketBatch.empty(), 60.0, 0.0)


# ----------------------------------------------------------------------
# Property: any chunking reproduces the batch builder exactly.
# ----------------------------------------------------------------------

packet_rows = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5_000, allow_nan=False),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=20),
        st.sampled_from([22, 23, 80]),
    ),
    min_size=1,
    max_size=120,
)


@given(packet_rows, st.floats(min_value=10.0, max_value=2_000.0),
       st.floats(min_value=50.0, max_value=6_000.0))
@settings(max_examples=60)
def test_streaming_equals_batch(rows, timeout, chunk_seconds):
    batch = _packets([(ts, s, d, p, TCP) for ts, s, d, p in rows])
    streamed = chunked_events(batch, timeout, chunk_seconds)
    batched = build_events(batch, timeout)
    assert tables_equivalent(streamed, batched)
