"""Unit tests for the characterization analyses."""

import numpy as np
import pytest

from repro.core import characterize
from repro.core.detection import detect_dispersion
from repro.core.events import build_events
from repro.fingerprint import ZMAP_IPID
from repro.net.asn import ASType, build_registry
from repro.packet import PacketBatch, Protocol
from repro.telescope.darknet import Telescope
from repro.net.prefix import Prefix


def build_capture(rows, telescope=None):
    """rows: (ts, src, dst, dport, proto, ipid)."""
    telescope = telescope or Telescope.from_prefix(Prefix.parse("10.0.0.0/24"))
    arr = np.array(rows, dtype=np.float64)
    batch = PacketBatch(
        ts=arr[:, 0],
        src=arr[:, 1].astype(np.uint32),
        dst=arr[:, 2].astype(np.uint32),
        dport=arr[:, 3].astype(np.uint16),
        proto=arr[:, 4].astype(np.uint8),
        ipid=arr[:, 5].astype(np.uint16),
    )
    from repro.telescope.capture import DarknetCapture

    return DarknetCapture(packets=batch, telescope=telescope)


DARK = 167_772_160  # 10.0.0.0
TCP = Protocol.TCP_SYN.value
DAY = 86_400.0


class TestTemporalTrends:
    def test_counts_and_shares(self):
        rows = []
        # Day 0: AH source 1 covers 30 dark addrs; source 2 sends 2 pkts.
        for i in range(30):
            rows.append((i * 10.0, 1, DARK + i, 80, TCP, 0))
        rows += [(5.0, 2, DARK + 1, 23, TCP, 0), (6.0, 2, DARK + 2, 23, TCP, 0)]
        # Day 1: only background.
        rows.append((DAY + 5.0, 3, DARK + 1, 445, TCP, 0))
        capture = build_capture(rows)
        events = build_events(capture.packets, timeout=600.0)
        detection = detect_dispersion(events, dark_size=256)
        points = characterize.temporal_trends(events, detection, [0, 1], DAY)
        assert points[0].daily_new_ah == 1
        assert points[0].active_ah == 1
        assert points[0].all_daily_sources == 2
        assert points[0].ah_packets == 30
        assert points[0].total_packets == 32
        assert points[0].ah_packet_share == pytest.approx(30 / 32)
        assert points[1].daily_new_ah == 0
        assert points[1].all_daily_sources == 1

    def test_event_packets_attributed_to_start_day(self):
        # One event straddling midnight: all its packets count on the
        # day it started (the paper's events-format constraint).
        rows = [(DAY - 100.0, 1, DARK + i, 80, TCP, 0) for i in range(20)]
        rows += [(DAY + 100.0, 1, DARK + 20 + i, 80, TCP, 0) for i in range(20)]
        capture = build_capture(rows)
        events = build_events(capture.packets, timeout=1_000.0)
        assert len(events) == 1
        detection = detect_dispersion(events, dark_size=256)
        points = characterize.temporal_trends(events, detection, [0, 1], DAY)
        assert points[0].ah_packets == 40
        assert points[1].ah_packets == 0
        assert points[1].total_packets == 0


class TestOrigins:
    @pytest.fixture()
    def registry(self):
        return build_registry(
            [
                (65001, "cloud-us-1", "US", ASType.CLOUD, ["1.0.0.0/8"]),
                (65002, "isp-cn-1", "CN", ASType.ISP, ["2.0.0.0/8"]),
            ]
        )

    def test_grouping_and_labels(self, registry):
        cloud = 1 << 24
        isp = 2 << 24
        sources = {cloud + 1, cloud + 2, cloud + 257, isp + 1}
        rows, totals = characterize.origins(sources, registry)
        assert rows[0].label == "Cloud (US)"
        assert rows[0].unique_ips == 3
        assert rows[0].unique_slash24 == 2
        assert rows[1].unique_ips == 1
        assert totals["ips"] == (4, 1.0)

    def test_acked_counts(self, registry):
        cloud = 1 << 24
        sources = {cloud + 1, cloud + 2}
        rows, _ = characterize.origins(sources, registry, acked_sources={cloud + 1})
        assert rows[0].acked_ips == 1

    def test_packet_volumes(self, registry):
        cloud = 1 << 24
        rows_pk = [(0.0, cloud + 1, DARK + i, 80, TCP, 0) for i in range(5)]
        capture = build_capture(rows_pk)
        rows, totals = characterize.origins({cloud + 1}, registry, capture)
        assert rows[0].packets == 5
        assert totals["packets"] == (5, 1.0)

    def test_empty(self, registry):
        rows, totals = characterize.origins(set(), registry)
        assert rows == []
        assert totals["ips"] == (0, 0.0)

    def test_top_n_truncation(self, registry):
        cloud = 1 << 24
        isp = 2 << 24
        sources = {cloud + 1, isp + 1}
        rows, _ = characterize.origins(sources, registry, top_n=1)
        assert len(rows) == 1


class TestTopPorts:
    def test_ranking_and_fingerprints(self):
        rows = []
        for i in range(10):
            rows.append((i, 1, DARK + i, 6_379, TCP, ZMAP_IPID))
        for i in range(6):
            dst = DARK + i
            rows.append((i, 1, dst, 23, TCP, (dst ^ 23) & 0xFFFF))
        for i in range(3):
            rows.append((i, 1, DARK + i, 22, TCP, 7))
        capture = build_capture(rows)
        ranked = characterize.top_ports(capture, {1})
        assert (ranked[0].port, ranked[0].packets) == (6_379, 10)
        assert ranked[0].zmap_packets == 10
        assert ranked[1].port == 23
        assert ranked[1].masscan_packets == 6
        assert ranked[2].other_packets == 3

    def test_only_ah_counted(self):
        rows = [(0, 1, DARK, 80, TCP, 0), (0, 2, DARK, 443, TCP, 0)]
        capture = build_capture(rows)
        ranked = characterize.top_ports(capture, {1})
        assert len(ranked) == 1
        assert ranked[0].port == 80

    def test_port_overlap(self):
        a = [characterize.PortRow(80, 6, 1, 0, 0, 1), characterize.PortRow(23, 6, 1, 0, 0, 1)]
        b = [characterize.PortRow(80, 6, 1, 0, 0, 1), characterize.PortRow(22, 6, 1, 0, 0, 1)]
        assert characterize.port_overlap(a, b) == 1

    def test_empty(self):
        capture = build_capture([(0, 1, DARK, 80, TCP, 0)])
        assert characterize.top_ports(capture, set()) == []


class TestZipf:
    def test_cumulative_share(self):
        rows = []
        for i in range(8):
            rows.append((i, 1, DARK + i, 80, TCP, 0))
        rows.append((0, 2, DARK, 80, TCP, 0))
        rows.append((0, 3, DARK, 80, TCP, 0))
        capture = build_capture(rows)
        curve = characterize.zipf_contribution(capture, {1, 2, 3})
        assert curve[0] == pytest.approx(0.8)
        assert curve[-1] == pytest.approx(1.0)
        assert len(curve) == 3

    def test_top_fraction_share(self):
        curve = np.array([0.5, 0.8, 1.0])
        assert characterize.top_fraction_share(curve, 1 / 3) == pytest.approx(0.5)
        assert characterize.top_fraction_share(curve, 1.0) == 1.0

    def test_top_fraction_validation(self):
        with pytest.raises(ValueError):
            characterize.top_fraction_share(np.array([1.0]), 0.0)

    def test_empty(self):
        capture = build_capture([(0, 1, DARK, 80, TCP, 0)])
        assert len(characterize.zipf_contribution(capture, set())) == 0
        assert characterize.top_fraction_share(np.empty(0), 0.5) == 0.0
