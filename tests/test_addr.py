"""Unit tests for IPv4 address arithmetic."""

import numpy as np
import pytest

from repro.net import addr


class TestParseFormat:
    def test_roundtrip_known_value(self):
        assert addr.parse_ip("10.0.0.1") == 167772161
        assert addr.format_ip(167772161) == "10.0.0.1"

    def test_edges(self):
        assert addr.parse_ip("0.0.0.0") == 0
        assert addr.parse_ip("255.255.255.255") == addr.MAX_IP
        assert addr.format_ip(addr.MAX_IP) == "255.255.255.255"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "-1.0.0.0"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            addr.parse_ip(bad)

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            addr.format_ip(2**32)
        with pytest.raises(ValueError):
            addr.format_ip(-1)


class TestPrefixMath:
    def test_prefix_size(self):
        assert addr.prefix_size(24) == 256
        assert addr.prefix_size(32) == 1
        assert addr.prefix_size(0) == 2**32

    def test_prefix_size_rejects_bad_length(self):
        with pytest.raises(ValueError):
            addr.prefix_size(33)
        with pytest.raises(ValueError):
            addr.prefix_size(-1)

    def test_prefix_base_alignment(self):
        base = addr.prefix_base(addr.parse_ip("192.0.2.77"), 24)
        assert addr.format_ip(base) == "192.0.2.0"

    def test_ip_in_prefix_scalar(self):
        base = addr.parse_ip("192.0.2.0")
        assert addr.ip_in_prefix(addr.parse_ip("192.0.2.255"), base, 24)
        assert not addr.ip_in_prefix(addr.parse_ip("192.0.3.0"), base, 24)

    def test_ip_in_prefix_array(self):
        base = addr.parse_ip("192.0.2.0")
        arr = np.array(
            [addr.parse_ip("192.0.2.1"), addr.parse_ip("192.0.3.1")],
            dtype=np.uint32,
        )
        mask = addr.ip_in_prefix(arr, base, 24)
        assert mask.tolist() == [True, False]


class TestSlash24:
    def test_scalar(self):
        assert addr.slash24(addr.parse_ip("192.0.2.77")) == addr.parse_ip("192.0.2.0") >> 8

    def test_array_dtype(self):
        arr = np.array([0, 256, 511, 512], dtype=np.uint32)
        out = addr.slash24(arr)
        assert out.dtype == np.uint32
        assert out.tolist() == [0, 1, 1, 2]

    def test_slash24_count(self):
        assert addr.slash24_count(0) == 0
        assert addr.slash24_count(1) == 1
        assert addr.slash24_count(256) == 1
        assert addr.slash24_count(257) == 2

    def test_slash24_count_rejects_negative(self):
        with pytest.raises(ValueError):
            addr.slash24_count(-1)


class TestRandomIps:
    def test_random_ips_stay_in_prefix(self, rng):
        base = addr.parse_ip("198.51.100.0")
        ips = addr.random_ips_in_prefix(rng, base, 24, 500)
        assert ips.dtype == np.uint32
        assert np.all(addr.ip_in_prefix(ips, base, 24))

    def test_zero_count(self, rng):
        assert len(addr.random_ips_in_prefix(rng, 0, 8, 0)) == 0

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            addr.random_ips_in_prefix(rng, 0, 8, -1)


class TestDistinctSlash24s:
    """Vectorized /24 counting must match the set-comprehension form."""

    def test_matches_set_reference_on_array(self, rng):
        ips = rng.integers(0, 2**32, size=5_000, dtype=np.uint32)
        expected = len({addr.slash24(int(s)) for s in ips})
        assert addr.distinct_slash24s(ips) == expected

    def test_accepts_plain_iterables(self):
        ips = {0x01020304, 0x01020305, 0x0A0B0C0D}
        assert addr.distinct_slash24s(ips) == 2
        assert addr.distinct_slash24s(list(ips)) == 2

    def test_empty(self):
        assert addr.distinct_slash24s(np.empty(0, dtype=np.uint32)) == 0
        assert addr.distinct_slash24s(set()) == 0
