"""Round-trip tests for the serialized state the service depends on.

The serve layer moves detector and flow-shard state across process
boundaries (engine snapshots, checkpoint files, worker recycling), so
the byte formats have to survive a full snapshot → merge → snapshot
cycle without perturbing results, and stale payloads from other
versions must be rejected loudly rather than deserialized into
garbage.
"""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.core.streaming import STATE_MAGIC, StreamingDetector
from repro.flows.netflow import FlowColumns
from repro.flows.synthesis import (
    FLOW_STATE_MAGIC,
    flow_state_from_bytes,
    flow_state_to_bytes,
)
from repro.packet import PacketBatch, Protocol
from repro.parallel import shard_batch
from tests.test_streaming import (
    _assert_detections_identical,
    _assert_tables_identical,
)

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_TIMEOUT = 600.0
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)


def _capture(seed, n=6_000, duration=150_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 120, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _detector():
    return StreamingDetector(_TIMEOUT, _DARK_SIZE, _CONFIG)


class TestDetectorRoundTrip:
    def test_snapshot_merge_snapshot_cycle(self):
        """Serialize shards, merge the revived copies, serialize the
        merged state, revive again — results stay bit-identical to the
        offline batch pipeline."""
        batch = _capture(101)
        shards = shard_batch(batch, 3)
        blobs = []
        for shard in shards:
            detector = _detector()
            for _, _, chunk in shard.iter_time_chunks(3_600.0):
                detector.add_batch(chunk)
            blobs.append(detector.to_bytes())  # snapshot

        merged = StreamingDetector.from_bytes(blobs[0])
        for blob in blobs[1:]:
            merged.merge(StreamingDetector.from_bytes(blob))  # merge

        revived = StreamingDetector.from_bytes(merged.to_bytes())  # snapshot
        events, detections = revived.finish()

        ref_events = build_events(batch, _TIMEOUT)
        _assert_tables_identical(events, ref_events)
        _assert_detections_identical(
            detections, detect_all(ref_events, _DARK_SIZE, _CONFIG)
        )

    def test_round_trip_is_a_deep_copy(self):
        """Feeding the original after a snapshot must not leak into the
        revived copy (the engine's query path relies on this)."""
        original = _detector()
        chunks = list(_capture(102).iter_time_chunks(3_600.0))
        half = len(chunks) // 2
        for _, _, chunk in chunks[:half]:
            original.add_batch(chunk)
        frozen = StreamingDetector.from_bytes(original.to_bytes())
        for _, _, chunk in chunks[half:]:
            original.add_batch(chunk)
        assert frozen.packets_seen < original.packets_seen

    def test_empty_detector_round_trips(self):
        revived = StreamingDetector.from_bytes(_detector().to_bytes())
        events, detections = revived.finish()
        assert len(events) == 0
        assert detections[1].sources == set()

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"garbage",
            b"repro-detector-state-v0\n" + b"\x00" * 16,
            FLOW_STATE_MAGIC + b"\x00" * 16,  # wrong format's magic
        ],
        ids=["empty", "garbage", "stale-version", "flow-magic"],
    )
    def test_version_mismatch_rejected(self, data):
        with pytest.raises(ValueError, match="header"):
            StreamingDetector.from_bytes(data)

    def test_magic_is_versioned(self):
        blob = _detector().to_bytes()
        assert blob.startswith(STATE_MAGIC)
        assert b"v2" in STATE_MAGIC


def _columns(seed, n=500):
    rng = np.random.default_rng(seed)
    return FlowColumns(
        router=rng.integers(0, 3, n).astype(np.int8),
        day=rng.integers(0, 30, n).astype(np.int32),
        src=rng.integers(1, 2**32 - 1, n).astype(np.uint32),
        dport=rng.integers(0, 2**16, n).astype(np.uint16),
        proto=rng.integers(0, 4, n).astype(np.uint8),
        true=rng.integers(1, 10_000, n).astype(np.int64),
    )


def _assert_columns_identical(a, b):
    assert len(a) == len(b)
    for column in ("router", "day", "src", "dport", "proto", "true"):
        assert np.array_equal(getattr(a, column), getattr(b, column)), column


class TestFlowStateRoundTrip:
    def test_snapshot_merge_snapshot_cycle(self):
        """Shard checkpoints concatenated in shard order reproduce the
        serial column layout — through two serialization hops."""
        shards = [_columns(s) for s in (1, 2, 3)]
        revived = [
            flow_state_from_bytes(flow_state_to_bytes(c)) for c in shards
        ]
        merged = FlowColumns.concat(revived)
        final = flow_state_from_bytes(flow_state_to_bytes(merged))
        _assert_columns_identical(final, FlowColumns.concat(shards))

    def test_dtypes_preserved(self):
        revived = flow_state_from_bytes(flow_state_to_bytes(_columns(4)))
        assert revived.router.dtype == np.int8
        assert revived.day.dtype == np.int32
        assert revived.src.dtype == np.uint32
        assert revived.dport.dtype == np.uint16
        assert revived.proto.dtype == np.uint8
        assert revived.true.dtype == np.int64

    def test_empty_columns_round_trip(self):
        revived = flow_state_from_bytes(flow_state_to_bytes(FlowColumns()))
        assert len(revived) == 0

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"garbage",
            b"repro-flow-state-v0\n" + b"\x00" * 16,
            STATE_MAGIC + b"\x00" * 16,  # wrong format's magic
        ],
        ids=["empty", "garbage", "stale-version", "detector-magic"],
    )
    def test_version_mismatch_rejected(self, data):
        with pytest.raises(ValueError, match="header"):
            flow_state_from_bytes(data)

    def test_payload_must_be_flow_columns(self):
        import pickle

        bogus = FLOW_STATE_MAGIC + pickle.dumps({"not": "columns"})
        with pytest.raises(ValueError):
            flow_state_from_bytes(bogus)
