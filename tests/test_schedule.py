"""Unit tests for the size-aware shard planner (repro.core.schedule).

The planner's promises, pinned here:

* Plans are pure functions of (costs, workers, mode) with explicit
  tie-breaking — identical inputs give identical plans.
* ``static`` is the exact ``np.array_split`` layout the legacy path
  used, so disabling the planner is bit-for-bit backward compatible.
* Every plan partitions the input: items appear exactly once, in
  ascending order within a task, and contiguous plans keep tasks as
  contiguous index ranges (the concat-merge requirement).
* A single dominant item is isolated in its own task instead of
  dragging neighbours onto its shard.
* ``submit_order`` is a permutation, heaviest first.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    DEFAULT_STEAL_FACTOR,
    SCHEDULE_MODES,
    SchedulePlan,
    TaskPlan,
    lpt_assign,
    plan_contiguous,
    plan_grouped,
    validate_mode,
)


def _covered_items(plan: SchedulePlan) -> list:
    items = []
    for task in plan.tasks:
        items.extend(task.items)
    return items


def _assert_partition(plan: SchedulePlan, n_items: int):
    items = _covered_items(plan)
    assert sorted(items) == list(range(n_items))
    for task in plan.tasks:
        assert list(task.items) == sorted(task.items)
        assert 0 <= task.shard < plan.workers
    assert [task.index for task in plan.tasks] == list(range(plan.n_tasks))


class TestValidateMode:
    def test_accepts_all_modes(self):
        for mode in SCHEDULE_MODES:
            assert validate_mode(mode) == mode

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="schedule must be one of"):
            validate_mode("adaptive")


class TestLptAssign:
    def test_balances_equal_items(self):
        assignment = lpt_assign([1.0] * 8, 4)
        counts = np.bincount(assignment, minlength=4)
        assert counts.tolist() == [2, 2, 2, 2]

    def test_heavy_item_gets_own_bin(self):
        # One item worth more than everything else combined: LPT gives
        # it a bin to itself and spreads the rest over the other bins.
        assignment = lpt_assign([100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 3)
        heavy_bin = assignment[0]
        assert all(a != heavy_bin for a in assignment[1:])

    def test_deterministic_ties(self):
        a = lpt_assign([2.0, 2.0, 2.0, 2.0], 2)
        b = lpt_assign([2.0, 2.0, 2.0, 2.0], 2)
        assert a == b

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError, match="bins"):
            lpt_assign([1.0], 0)


class TestPlanContiguous:
    def test_static_matches_array_split(self):
        # Backward compatibility: disabling the planner reproduces the
        # legacy np.array_split shard layout exactly.
        for n, workers in [(10, 3), (7, 7), (24, 5), (3, 8)]:
            plan = plan_contiguous([1.0] * n, workers, "static")
            expected = [
                tuple(int(i) for i in part)
                for part in np.array_split(np.arange(n), workers)
            ]
            assert [task.items for task in plan.tasks] == expected
            assert plan.n_tasks == workers

    def test_empty_population(self):
        for mode in SCHEDULE_MODES:
            plan = plan_contiguous([], 4, mode)
            assert plan.n_tasks == 4
            assert all(task.items == () for task in plan.tasks)
            assert [task.shard for task in plan.tasks] == [0, 1, 2, 3]

    def test_workers_exceed_items(self):
        for mode in SCHEDULE_MODES:
            plan = plan_contiguous([5.0, 1.0], 6, mode)
            _assert_partition(plan, 2)

    def test_packed_balances_heavy_tail(self):
        # Geometric tail: static's even-count slices load shard 0 with
        # 12x shard 3's work; packed's quantile cuts get within 4x.
        costs = [16.0, 8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0]
        static = plan_contiguous(costs, 4, "static")
        packed = plan_contiguous(costs, 4, "packed")
        assert packed.planned_spread() < static.planned_spread()

    def test_packed_isolates_dominant_item(self):
        # 1 item with ~all the work: packed cannot split it (the
        # per-item RNG stream is atomic), so it gets a slice alone and
        # the makespan drops to that single item's cost.
        costs = [300.0] + [1.0] * 30
        static = plan_contiguous(costs, 4, "static")
        packed = plan_contiguous(costs, 4, "packed")
        heavy_task = next(t for t in packed.tasks if 0 in t.items)
        assert heavy_task.items == (0,)

        def makespan(plan):
            return max(plan.planned_cost(s) for s in range(plan.workers))

        assert makespan(packed) < makespan(static)

    def test_stealing_isolates_dominant_item(self):
        # A single item holding ~all the work must land alone in its
        # own task (the per-item RNG stream is atomic — the planner
        # isolates what it cannot split).
        costs = [1.0, 1.0, 1000.0, 1.0, 1.0]
        plan = plan_contiguous(costs, 4, "stealing")
        heavy_task = next(t for t in plan.tasks if 2 in t.items)
        assert heavy_task.items == (2,)
        # ...and no other task shares its shard.
        assert len(plan.shard_tasks(heavy_task.shard)) == 1

    def test_stealing_over_decomposes(self):
        plan = plan_contiguous([1.0] * 64, 4, "stealing")
        assert plan.n_tasks > 4
        assert plan.n_tasks <= 4 * DEFAULT_STEAL_FACTOR + 1
        _assert_partition(plan, 64)

    def test_contiguous_tasks_are_ranges(self):
        costs = [float(c) for c in np.random.default_rng(3).integers(0, 50, 40)]
        for mode in SCHEDULE_MODES:
            plan = plan_contiguous(costs, 4, mode)
            _assert_partition(plan, 40)
            for task in plan.tasks:
                if task.items:
                    lo, hi = task.items[0], task.items[-1]
                    assert task.items == tuple(range(lo, hi + 1))

    def test_zero_costs_fall_back_to_even(self):
        plan = plan_contiguous([0.0] * 9, 3, "packed")
        assert [len(t.items) for t in plan.tasks] == [3, 3, 3]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="workers"):
            plan_contiguous([1.0], 0, "packed")
        with pytest.raises(ValueError, match="steal_factor"):
            plan_contiguous([1.0], 2, "stealing", steal_factor=0)
        with pytest.raises(ValueError, match="schedule"):
            plan_contiguous([1.0], 2, "magic")


class TestPlanGrouped:
    def test_static_not_planned(self):
        with pytest.raises(ValueError, match="legacy hash layout"):
            plan_grouped([1.0], [[0]], 2, "static")

    def test_empty_groups(self):
        for mode in ("packed", "stealing"):
            plan = plan_grouped([], [], 3, mode)
            assert plan.n_tasks == 3
            assert all(task.items == () for task in plan.tasks)

    def test_groups_stay_whole(self):
        groups = [[0, 5], [1, 2], [3], [4, 6, 7]]
        costs = [10.0, 3.0, 1.0, 6.0]
        for mode in ("packed", "stealing"):
            plan = plan_grouped(costs, groups, 2, mode)
            _assert_partition(plan, 8)
            for group in groups:
                owners = {
                    task.index
                    for task in plan.tasks
                    if set(group) & set(task.items)
                }
                assert len(owners) == 1, group

    def test_packed_one_task_per_shard(self):
        plan = plan_grouped([1.0] * 6, [[i] for i in range(6)], 4, "packed")
        assert plan.n_tasks == 4
        assert [task.shard for task in plan.tasks] == [0, 1, 2, 3]

    def test_workers_exceed_groups(self):
        # 2 groups over 5 shards: empty shards still get an (empty)
        # task so downstream telemetry arity matches the worker count.
        plan = plan_grouped([4.0, 2.0], [[0], [1]], 5, "packed")
        assert plan.n_tasks == 5
        assert sorted(len(t.items) for t in plan.tasks) == [0, 0, 0, 1, 1]

    def test_dominant_group_isolated(self):
        costs = [500.0, 1.0, 1.0, 1.0]
        plan = plan_grouped(costs, [[0], [1], [2], [3]], 3, "stealing")
        heavy_task = next(t for t in plan.tasks if 0 in t.items)
        assert heavy_task.items == (0,)
        assert len(plan.shard_tasks(heavy_task.shard)) == 1

    def test_mismatched_costs_raise(self):
        with pytest.raises(ValueError, match="align"):
            plan_grouped([1.0, 2.0], [[0]], 2, "packed")


class TestSubmitOrder:
    def test_heaviest_first_permutation(self):
        plan = plan_contiguous(
            [3.0, 1.0, 9.0, 2.0, 9.0, 5.0], 2, "stealing", steal_factor=3
        )
        order = plan.submit_order()
        assert sorted(order) == list(range(plan.n_tasks))
        submitted_costs = [plan.tasks[i].cost for i in order]
        assert submitted_costs == sorted(submitted_costs, reverse=True)

    def test_tie_break_by_index(self):
        plan = SchedulePlan(
            mode="packed",
            workers=2,
            tasks=(
                TaskPlan(index=0, shard=0, items=(0,), cost=2.0),
                TaskPlan(index=1, shard=1, items=(1,), cost=2.0),
            ),
        )
        assert plan.submit_order() == [0, 1]


class TestPlanIntrospection:
    def test_planned_cost_sums_shard_tasks(self):
        plan = plan_contiguous([4.0, 4.0, 4.0, 4.0], 2, "stealing",
                               steal_factor=2)
        total = sum(plan.planned_cost(s) for s in range(2))
        assert total == pytest.approx(16.0)

    def test_planned_spread_perfect_balance(self):
        plan = plan_contiguous([1.0] * 8, 2, "packed")
        assert plan.planned_spread() == pytest.approx(1.0)

    def test_planned_spread_empty_shard_is_inf(self):
        plan = plan_grouped([4.0], [[0]], 3, "packed")
        assert plan.planned_spread() == float("inf")


# ----------------------------------------------------------------------
# Property: for any cost vector, worker count and mode, the plan is a
# deterministic partition whose packed/stealing planned spread never
# loses to the static split by more than float noise.
# ----------------------------------------------------------------------


@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=0,
        max_size=60,
    ),
    workers=st.integers(min_value=1, max_value=8),
    mode=st.sampled_from(SCHEDULE_MODES),
)
@settings(max_examples=120, deadline=None)
def test_plan_contiguous_is_deterministic_partition(costs, workers, mode):
    plan = plan_contiguous(costs, workers, mode)
    again = plan_contiguous(costs, workers, mode)
    assert plan == again
    _assert_partition(plan, len(costs))
    if costs:
        for task in plan.tasks:
            if task.items:
                lo, hi = task.items[0], task.items[-1]
                assert task.items == tuple(range(lo, hi + 1))


@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=0,
        max_size=40,
    ),
    workers=st.integers(min_value=1, max_value=6),
    mode=st.sampled_from(["packed", "stealing"]),
)
@settings(max_examples=120, deadline=None)
def test_plan_grouped_is_deterministic_partition(costs, workers, mode):
    groups = [[i] for i in range(len(costs))]
    plan = plan_grouped(costs, groups, workers, mode)
    again = plan_grouped(costs, groups, workers, mode)
    assert plan == again
    _assert_partition(plan, len(costs))
