"""Tests for the IPv6 future-work extension."""

import numpy as np
import pytest

from repro.ipv6.addr import format_ipv6, in_prefix_v6, parse_ipv6, prefix_base_v6
from repro.ipv6.hitlist import AddressPattern, HitlistConfig, build_hitlist
from repro.ipv6.scanner import build_ipv6_population
from repro.ipv6.telescope import (
    AddressInterner,
    Ipv6Telescope,
    detect_ipv6_hitters,
)

DAY = 86_400.0


@pytest.fixture(scope="module")
def hitlist():
    return build_hitlist(HitlistConfig(seed=11, prefix_count=120, entries_per_prefix=40.0))


@pytest.fixture(scope="module")
def telescope(hitlist):
    return Ipv6Telescope(hitlist=hitlist)


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(77)
    return build_ipv6_population(rng, duration=7 * DAY)


class TestAddr:
    def test_roundtrip(self):
        addr = parse_ipv6("2001:db8::1")
        assert format_ipv6(addr) == "2001:db8::1"
        assert addr == (0x20010DB8 << 96) | 1

    def test_compressed_forms(self):
        assert parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001") == parse_ipv6(
            "2001:db8::1"
        )

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv6(2**128)

    def test_prefix_math(self):
        addr = parse_ipv6("2001:db8:aaaa:bbbb::42")
        base = prefix_base_v6(addr, 48)
        assert format_ipv6(base) == "2001:db8:aaaa::"
        assert in_prefix_v6(addr, base, 48)
        assert not in_prefix_v6(parse_ipv6("2001:db8:cccc::1"), base, 48)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            prefix_base_v6(0, 129)


class TestHitlist:
    def test_deterministic(self):
        a = build_hitlist(HitlistConfig(seed=5, prefix_count=30))
        b = build_hitlist(HitlistConfig(seed=5, prefix_count=30))
        assert a.addresses == b.addresses
        assert np.array_equal(a.dark, b.dark)

    def test_dark_fraction_respected(self, hitlist):
        share = hitlist.dark_size / len(hitlist)
        assert 0.02 < share < 0.35

    def test_dark_clusters_by_prefix(self, hitlist):
        # A prefix is either entirely dark or entirely lit.
        for p in np.unique(hitlist.prefix_of):
            flags = hitlist.dark[hitlist.prefix_of == p]
            assert flags.all() or not flags.any()

    def test_patterns_present(self, hitlist):
        counts = hitlist.pattern_counts()
        assert set(counts) == set(AddressPattern)
        assert counts[AddressPattern.LOW_BYTE] > counts[AddressPattern.PRIVACY] * 0.5

    def test_low_byte_entries_look_low(self, hitlist):
        for addr, pattern in zip(hitlist.addresses, hitlist.patterns):
            if pattern is AddressPattern.LOW_BYTE:
                assert addr & 0xFFFFFFFFFFFFFFFF < 256

    def test_eui64_marker(self, hitlist):
        for addr, pattern in zip(hitlist.addresses, hitlist.patterns):
            if pattern is AddressPattern.EUI64:
                assert (addr >> 24) & 0xFFFF == 0xFFFE
                break

    def test_documentation_prefix_only(self, hitlist):
        for addr in hitlist.addresses[:200]:
            assert addr >> 96 == 0x20010DB8

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HitlistConfig(dark_fraction=0.0)
        with pytest.raises(ValueError):
            HitlistConfig(pattern_mix=(0.5, 0.5, 0.5))


class TestInterner:
    def test_bijection(self):
        interner = AddressInterner()
        a = interner.intern(2**100)
        b = interner.intern(42)
        assert interner.intern(2**100) == a
        assert interner.resolve(a) == 2**100
        assert interner.resolve(b) == 42
        assert len(interner) == 2


class TestScanners:
    def test_population_tiers(self, population):
        behaviors = {s.behavior for s in population}
        assert behaviors == {"v6-aggressive", "v6-pattern-miner", "v6-dabbler"}

    def test_pattern_miner_candidates(self, population, hitlist):
        miner = next(s for s in population if s.behavior == "v6-pattern-miner")
        candidates = miner.candidate_indexes(hitlist)
        patterns = {hitlist.patterns[i] for i in candidates}
        assert AddressPattern.PRIVACY not in patterns

    def test_emission_targets_hitlist(self, population, hitlist):
        scanner = population[0]
        probes = scanner.emit(hitlist)
        assert probes
        assert all(0 <= p.target_index < len(hitlist) for p in probes)

    def test_emission_deterministic(self, population, hitlist):
        scanner = population[0]
        a = [p.target_index for p in scanner.emit(hitlist)]
        b = [p.target_index for p in scanner.emit(hitlist)]
        assert a == b


class TestDetection:
    def test_aggressive_detected(self, telescope, population):
        detection = detect_ipv6_hitters(telescope, population)
        hitters = detection.hitters(1)
        aggressive = {s.src for s in population if s.behavior == "v6-aggressive"}
        dabblers = {s.src for s in population if s.behavior == "v6-dabbler"}
        # Most aggressive sweepers qualify; no dabbler does.
        assert len(hitters & aggressive) >= len(aggressive) * 0.5
        assert not hitters & dabblers

    def test_capture_only_dark_entries(self, telescope, population):
        detection = detect_ipv6_hitters(telescope, population)
        capture = detection.capture
        dark_addresses = {
            telescope.hitlist.addresses[i] for i in telescope.hitlist.dark_indexes()
        }
        for interned in np.unique(capture.packets.dst):
            assert capture.targets.resolve(int(interned)) in dark_addresses

    def test_events_built(self, telescope, population):
        detection = detect_ipv6_hitters(telescope, population)
        assert len(detection.events) > 0
        detection.events.validate_invariants()

    def test_hitter_addresses_are_v6(self, telescope, population):
        detection = detect_ipv6_hitters(telescope, population)
        for address in detection.hitters(1):
            assert address > 2**32
            assert format_ipv6(address).startswith("2001:db8:")
