"""Tests for the detection-latency analysis."""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.detection import detect_dispersion
from repro.core.events import build_events
from repro.core.latency import (
    LatencyRecord,
    _event_latency,
    detection_latencies,
    latency_summary,
)
from repro.packet import PacketBatch, Protocol

TCP = Protocol.TCP_SYN.value


def uniform_scan_batch(src, n, rate, dark_size=1_000, seed=0, start=0.0):
    """A scan at `rate` pps touching n distinct dark addresses."""
    rng = np.random.default_rng(seed)
    ts = start + np.arange(n) / rate
    dst = rng.permutation(dark_size)[:n].astype(np.uint32)
    return PacketBatch(
        ts=ts,
        src=np.full(n, src, dtype=np.uint32),
        dst=dst,
        dport=np.full(n, 23, dtype=np.uint16),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


class TestEventLatency:
    def test_exact_threshold_crossing(self):
        ts = np.array([0.0, 1.0, 2.0, 3.0])
        dst = np.array([1, 2, 2, 3])
        # Third distinct dst arrives at t=3.
        assert _event_latency(ts, dst, threshold=3) == 3.0
        assert _event_latency(ts, dst, threshold=1) == 0.0

    def test_never_reaches(self):
        ts = np.array([0.0, 1.0])
        dst = np.array([1, 1])
        assert _event_latency(ts, dst, threshold=2) is None


class TestDetectionLatencies:
    def test_rate_determines_latency(self):
        dark_size = 1_000
        fast = uniform_scan_batch(1, 500, rate=100.0, dark_size=dark_size, seed=1)
        slow = uniform_scan_batch(
            2, 500, rate=1.0, dark_size=dark_size, seed=2, start=0.0
        )
        batch = PacketBatch.concat([fast, slow]).sorted_by_time()
        events = build_events(batch, timeout=3_600.0)
        detection = detect_dispersion(events, dark_size, DetectionConfig())
        records = detection_latencies(batch, detection, dark_size)
        by_src = {r.src: r for r in records}
        assert set(by_src) == {1, 2}
        # 100 distinct dsts at 100 pps: ~1 s; at 1 pps: ~100 s.
        assert by_src[1].latency == pytest.approx(0.99, abs=0.2)
        assert by_src[2].latency == pytest.approx(99.0, abs=2.0)
        assert by_src[1].unique_needed == 100
        assert by_src[1].detected_at == by_src[1].start + by_src[1].latency

    def test_max_events_cap(self):
        dark_size = 200
        batches = [
            uniform_scan_batch(i, 100, rate=10.0, dark_size=dark_size, seed=i)
            for i in range(5)
        ]
        batch = PacketBatch.concat(batches).sorted_by_time()
        events = build_events(batch, timeout=600.0)
        detection = detect_dispersion(events, dark_size, DetectionConfig())
        records = detection_latencies(batch, detection, dark_size, max_events=2)
        assert len(records) == 2

    def test_empty_detection(self):
        batch = uniform_scan_batch(1, 5, rate=1.0)
        events = build_events(batch, timeout=600.0)
        detection = detect_dispersion(events, dark_size=1_000_000)
        assert detection_latencies(batch, detection, 1_000_000) == []

    def test_on_tiny_scenario(self, tiny_result):
        records = detection_latencies(
            tiny_result.capture.packets,
            tiny_result.detections[1],
            tiny_result.telescope.size,
            max_events=40,
        )
        assert records
        for record in records:
            assert record.latency >= 0.0
            assert record.unique_needed == int(
                np.ceil(0.1 * tiny_result.telescope.size)
            )


class TestSummary:
    def test_summary_fields(self):
        records = [
            LatencyRecord(1, 23, 6, 0.0, latency, 100)
            for latency in (1.0, 2.0, 3.0, 4.0, 100.0)
        ]
        summary = latency_summary(records)
        assert summary["n"] == 5
        assert summary["median"] == 3.0
        assert summary["max"] == 100.0
        assert summary["p10"] <= summary["p90"]

    def test_empty(self):
        assert latency_summary([]) == {"n": 0}
