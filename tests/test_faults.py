"""Tests for the fault-tolerant execution layer (repro.core.faults).

The contract under test everywhere: *faults change when work happens,
never what is computed*.  Injected kills, worker-process aborts,
corrupt checkpoints and interrupted runs must all converge to results
bit-identical to a fault-free serial run.
"""

import pickle
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import (
    CheckpointStore,
    ChunkCorruptionError,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    ShardFailedError,
    atomic_write_bytes,
    retryable,
    run_sharded,
    sha256_hex,
)
from repro.core.telemetry import PipelineTelemetry, RunHealth
from repro.io.packetlog import save_packets_chunked
from repro.parallel import (
    parallel_detect,
    parallel_detect_directory,
    parallel_flow_columns,
    resume_run,
)
from tests.test_parallel import _CONFIG, _DARK_SIZE, _random_capture, _reference
from tests.test_streaming import (
    _assert_detections_identical,
    _assert_tables_identical,
)

#: Zero-sleep policy for tests: full retry logic, no wall-clock cost.
_FAST = RetryPolicy(max_retries=2, backoff_seconds=0.0)

_NO_SLEEP = {"sleep": lambda seconds: None}


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_factor=2.0, max_backoff_seconds=0.35
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped, not 0.4
        assert policy.backoff(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(watchdog_seconds=0.0)


class TestFaultPlan:
    def test_from_seed_deterministic(self):
        a = FaultPlan.from_seed(7, 8, kills=3)
        b = FaultPlan.from_seed(7, 8, kills=3)
        assert a == b
        assert len(a.kill) == 3
        assert all(0 <= shard < 8 for shard in a.kill)

    def test_kill_fails_first_attempts_only(self):
        plan = FaultPlan(kill={2: 2})
        with pytest.raises(InjectedFault):
            plan.apply(2, 0, in_process=True)
        with pytest.raises(InjectedFault):
            plan.apply(2, 1, in_process=True)
        plan.apply(2, 2, in_process=True)  # budget spent: runs clean
        plan.apply(0, 0, in_process=True)  # other shards untouched

    def test_abort_downgraded_in_process(self):
        # A hard os._exit would kill the test runner; in-process it must
        # degrade to an ordinary raise.
        plan = FaultPlan(abort={0: 1})
        with pytest.raises(InjectedFault, match="in-process"):
            plan.apply(0, 0, in_process=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, 4, mode="melt")
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, 4, kills=5)

    def test_plan_is_picklable(self):
        plan = FaultPlan.from_seed(3, 4)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestAtomicWrite:
    def test_roundtrip_and_digest(self, tmp_path):
        path = tmp_path / "blob.bin"
        digest = atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert digest == sha256_hex(b"payload")

    def test_no_tmp_leftover(self, tmp_path):
        atomic_write_bytes(tmp_path / "blob.bin", b"x" * 1024)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "blob.bin"]
        assert leftovers == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.save("detect", 3, b"state-bytes")
        assert store.load("detect", 3) == b"state-bytes"
        assert store.load("detect", 4) is None

    def test_corrupt_payload_discarded_and_counted(self, tmp_path):
        health = RunHealth()
        store = CheckpointStore(tmp_path / "run", health)
        path = store.save("detect", 0, b"good")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.load("detect", 0) is None
        assert health.checkpoint_corrupt == 1

    def test_truncated_checkpoint_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        path = store.save("detect", 0, b"a longer payload")
        path.write_bytes(path.read_bytes()[:-5])
        assert store.load("detect", 0) is None

    def test_foreign_file_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.path_for("detect", 0).write_bytes(b"not a checkpoint at all")
        assert store.load("detect", 0) is None

    def test_require_meta_adopts_then_enforces(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.require_meta({"kind": "detect", "workers": 2})
        store.require_meta({"kind": "detect", "workers": 2})  # idempotent
        with pytest.raises(ValueError, match="workers"):
            store.require_meta({"kind": "detect", "workers": 4})


def _double(value):
    """Top-level (picklable) worker for run_sharded tests."""
    return value * 2


class TestRunSharded:
    def test_ordered_results(self):
        out = run_sharded(
            _double, [(i,) for i in range(5)], use_processes=False, **_NO_SLEEP
        )
        assert out == [0, 2, 4, 6, 8]

    def test_retry_recovers_and_is_counted(self):
        health = RunHealth()
        out = run_sharded(
            _double,
            [(i,) for i in range(4)],
            policy=_FAST,
            plan=FaultPlan(kill={1: 2}),
            use_processes=False,
            health=health,
            **_NO_SLEEP,
        )
        assert out == [0, 2, 4, 6]
        assert health.retries == 2

    def test_budget_exhaustion_raises_shard_failed(self):
        with pytest.raises(ShardFailedError) as excinfo:
            run_sharded(
                _double,
                [(i,) for i in range(3)],
                policy=RetryPolicy(max_retries=1, backoff_seconds=0.0),
                plan=FaultPlan(kill={2: 5}),
                use_processes=False,
                **_NO_SLEEP,
            )
        assert excinfo.value.shard == 2
        assert isinstance(excinfo.value.cause, InjectedFault)

    def test_non_retryable_surfaces_immediately(self):
        def poisoned(value):
            raise ChunkCorruptionError(f"corrupt packet chunk chunk-{value}")

        health = RunHealth()
        with pytest.raises(ChunkCorruptionError, match="chunk-0"):
            run_sharded(
                poisoned,
                [(0,)],
                policy=_FAST,
                use_processes=False,
                health=health,
                **_NO_SLEEP,
            )
        assert health.retries == 0
        assert not retryable(ChunkCorruptionError("x"))

    def test_submit_order_reorders_execution_not_results(self):
        submitted = []

        def tracking(value):
            submitted.append(value)
            return value * 2

        out = run_sharded(
            tracking,
            [(i,) for i in range(4)],
            use_processes=False,
            submit_order=[3, 1, 0, 2],
            **_NO_SLEEP,
        )
        assert out == [0, 2, 4, 6]
        assert submitted == [3, 1, 0, 2]

    def test_submit_order_must_be_permutation(self):
        for bad in ([0, 1], [0, 0, 1, 2], [0, 1, 2, 4]):
            with pytest.raises(ValueError, match="permutation"):
                run_sharded(
                    _double,
                    [(i,) for i in range(4)],
                    use_processes=False,
                    submit_order=bad,
                    **_NO_SLEEP,
                )

    def test_checkpoints_skip_finished_shards(self, tmp_path):
        health = RunHealth()
        store = CheckpointStore(tmp_path / "run", health)
        run_sharded(
            _double,
            [(i,) for i in range(3)],
            use_processes=False,
            store=store,
            health=health,
            **_NO_SLEEP,
        )
        assert health.checkpoint_writes == 3

        calls = []

        def recording(value):
            calls.append(value)
            return value * 2

        out = run_sharded(
            recording,
            [(i,) for i in range(3)],
            use_processes=False,
            store=store,
            health=health,
            **_NO_SLEEP,
        )
        assert out == [0, 2, 4]
        assert calls == []  # every shard came off disk
        assert health.checkpoint_hits == 3

    def test_corrupt_checkpoint_reruns_shard(self, tmp_path):
        health = RunHealth()
        store = CheckpointStore(tmp_path / "run", health)
        run_sharded(
            _double, [(i,) for i in range(2)], use_processes=False,
            store=store, **_NO_SLEEP,
        )
        victim = store.path_for("shard", 1)
        victim.write_bytes(victim.read_bytes()[:-3])
        out = run_sharded(
            _double, [(i,) for i in range(2)], use_processes=False,
            store=store, health=health, **_NO_SLEEP,
        )
        assert out == [0, 2]
        assert health.checkpoint_hits == 1
        assert health.checkpoint_corrupt == 1

    def test_incompatible_checkpoint_state_reruns_shard(self, tmp_path):
        health = RunHealth()
        store = CheckpointStore(tmp_path / "run", health)
        store.save("shard", 0, b"intact but unloadable")

        def strict_loads(payload):
            raise ValueError("state version mismatch")

        out = run_sharded(
            _double, [(5,)], use_processes=False, store=store,
            health=health, loads=strict_loads, **_NO_SLEEP,
        )
        assert out == [10]
        assert health.checkpoint_corrupt == 1
        assert health.checkpoint_hits == 0


class TestProcessPoolRecovery:
    """Real worker processes: hard aborts must respawn, not wedge."""

    def test_hard_abort_respawns_pool_and_recovers(self):
        health = RunHealth()
        out = run_sharded(
            _double,
            [(i,) for i in range(3)],
            policy=RetryPolicy(max_retries=2, backoff_seconds=0.0),
            plan=FaultPlan(abort={1: 1}),
            use_processes=True,
            max_workers=2,
            health=health,
        )
        assert out == [0, 2, 4]
        assert health.respawns >= 1
        assert health.retries >= 1

    def test_hard_abort_with_no_budget_fails_loudly(self):
        with pytest.raises(ShardFailedError):
            run_sharded(
                _double,
                [(i,) for i in range(2)],
                policy=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                plan=FaultPlan(abort={0: 1}),
                use_processes=True,
                max_workers=2,
            )

    def test_injected_kill_across_processes(self):
        health = RunHealth()
        out = run_sharded(
            _double,
            [(i,) for i in range(4)],
            policy=_FAST,
            plan=FaultPlan(kill={0: 1, 3: 1}),
            use_processes=True,
            max_workers=2,
            health=health,
        )
        assert out == [0, 2, 4, 6]
        assert health.retries == 2


# ----------------------------------------------------------------------
# Identity under faults — the tentpole property.
# ----------------------------------------------------------------------

_BATCH = _random_capture(97, n=6_000)
_REF_EVENTS, _REF_DETECTIONS = _reference(_BATCH)


def _chunks():
    return (c for _, _, c in _BATCH.iter_time_chunks(3_600.0))


class TestFaultedDetectionIdentity:
    @settings(deadline=None, max_examples=16)
    @given(workers=st.integers(1, 8), victim=st.integers(0, 7))
    def test_kill_any_shard_retry_identical(self, workers, victim):
        """Crashing any single shard, any worker count: retry converges
        to the fault-free serial result, bit-identical."""
        plan = FaultPlan(kill={victim % workers: 1})
        result = parallel_detect(
            _chunks(),
            600.0,
            _DARK_SIZE,
            _CONFIG,
            workers=workers,
            use_processes=False,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
            fault_plan=plan,
        )
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    @settings(deadline=None, max_examples=12)
    @given(workers=st.integers(1, 8), victim=st.integers(0, 7))
    def test_interrupt_then_resume_identical(self, workers, victim):
        """Kill with a zero retry budget (the run dies mid-flight), then
        resume into the same checkpoint directory: only missing shards
        re-run and the merged result is bit-identical to serial."""
        victim %= workers
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        with tempfile.TemporaryDirectory() as run_dir:
            with pytest.raises(ShardFailedError):
                parallel_detect(
                    _chunks(),
                    600.0,
                    _DARK_SIZE,
                    _CONFIG,
                    workers=workers,
                    use_processes=False,
                    retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                    fault_plan=FaultPlan(kill={victim: 1}),
                    checkpoint_dir=run_dir,
                )
            result = parallel_detect(
                _chunks(),
                600.0,
                _DARK_SIZE,
                _CONFIG,
                workers=workers,
                use_processes=False,
                telemetry=telemetry,
                checkpoint_dir=run_dir,
            )
        # The serial in-process pass runs shards in index order, so the
        # interrupted run checkpointed exactly the shards before the
        # victim — the resume must reload precisely those.
        assert telemetry.health.checkpoint_hits == victim
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    def test_checkpoint_meta_mismatch_refuses_resume(self, tmp_path):
        parallel_detect(
            _chunks(), 600.0, _DARK_SIZE, _CONFIG,
            workers=2, use_processes=False,
            checkpoint_dir=tmp_path / "run",
        )
        with pytest.raises(ValueError, match="workers"):
            parallel_detect(
                _chunks(), 600.0, _DARK_SIZE, _CONFIG,
                workers=4, use_processes=False,
                checkpoint_dir=tmp_path / "run",
            )

    def test_shm_segment_unlinked_when_run_fails(self):
        """Even a run that dies with retries exhausted unlinks its
        shared-memory segment — the try/finally owns the lease."""
        import repro.io.shm as shm_module
        import repro.parallel as parallel_module

        if not shm_module.shared_memory_available():
            pytest.skip("platform has no usable shared memory")
        created = []
        original = shm_module.share_shard_batches

        def recording(shards, label="detect"):
            handles, lease = original(shards, label)
            created.append(lease.name)
            return handles, lease

        parallel_module.share_shard_batches = recording
        try:
            with pytest.raises(ShardFailedError):
                parallel_detect(
                    _chunks(), 600.0, _DARK_SIZE, _CONFIG,
                    workers=2, use_processes=False, shm=True,
                    fault_plan=FaultPlan(kill={0: 5}),
                    retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
                )
        finally:
            parallel_module.share_shard_batches = original
        from multiprocessing import shared_memory

        assert created
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestDirectoryFaults:
    @pytest.fixture()
    def capture_dir(self, tmp_path):
        save_packets_chunked(_BATCH, tmp_path / "cap", 50_000.0)
        return tmp_path / "cap"

    def test_faulted_directory_run_identical(self, capture_dir):
        result = parallel_detect_directory(
            capture_dir, 600.0, _DARK_SIZE, _CONFIG,
            workers=3, use_processes=False,
            retry=_FAST, fault_plan=FaultPlan(kill={2: 1}),
        )
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    def test_corrupt_chunk_strict_raises_with_path(self, capture_dir):
        victim = sorted(capture_dir.glob("chunk-*.npz"))[1]
        victim.write_bytes(b"garbage, not an archive")
        with pytest.raises(ChunkCorruptionError, match=victim.name):
            parallel_detect_directory(
                capture_dir, 600.0, _DARK_SIZE, _CONFIG,
                workers=2, use_processes=False, retry=_FAST,
            )

    def test_corrupt_chunk_quarantined_and_accounted(self, capture_dir):
        from repro.core.events import build_events
        from repro.core.detection import detect_all
        from repro.io.packetlog import load_packets_npz
        from repro.packet import PacketBatch

        paths = sorted(capture_dir.glob("chunk-*.npz"))
        victim = paths[1]
        victim.write_bytes(b"garbage, not an archive")

        telemetry = PipelineTelemetry(chunk_seconds=50_000.0)
        result = parallel_detect_directory(
            capture_dir, 600.0, _DARK_SIZE, _CONFIG,
            workers=2, use_processes=False,
            telemetry=telemetry, on_corrupt="quarantine",
        )
        assert telemetry.health.quarantined_chunks == [str(victim)]
        rows = dict(telemetry.summary_rows())
        assert rows["quarantined chunks"] == "1"
        assert rows["quarantined"] == str(victim)

        survivors = PacketBatch.concat(
            [load_packets_npz(p) for p in paths if p != victim]
        )
        ref_events = build_events(survivors, 600.0)
        ref_detections = detect_all(ref_events, _DARK_SIZE, _CONFIG)
        _assert_tables_identical(result.events, ref_events)
        _assert_detections_identical(result.detections, ref_detections)

    def test_resume_run_completes_interrupted_directory_run(
        self, capture_dir, tmp_path
    ):
        run_dir = tmp_path / "run"
        with pytest.raises(ShardFailedError):
            parallel_detect_directory(
                capture_dir, 600.0, _DARK_SIZE, _CONFIG,
                workers=3, use_processes=False,
                retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                fault_plan=FaultPlan(kill={1: 1}),
                checkpoint_dir=run_dir,
            )
        telemetry = PipelineTelemetry(chunk_seconds=50_000.0)
        result = resume_run(
            run_dir, use_processes=False, telemetry=telemetry
        )
        assert telemetry.health.checkpoint_hits == 1
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    def test_resume_run_rejects_non_run_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="run.json"):
            resume_run(tmp_path)

    def test_resume_run_rejects_non_directory_kind(self, tmp_path):
        parallel_detect(
            _chunks(), 600.0, _DARK_SIZE, _CONFIG,
            workers=2, use_processes=False,
            checkpoint_dir=tmp_path / "run",
        )
        with pytest.raises(ValueError, match="detect"):
            resume_run(tmp_path / "run")


class TestFlowShardFaults:
    def test_faulted_flow_synthesis_identical(self, tmp_path):
        from repro.sim.runner import run_scenario
        from repro.sim.scenario import tiny_scenario

        result = run_scenario(tiny_scenario(), mode="batch")
        scanners = result.flow_scanners()
        sources = np.array([int(s.src) for s in scanners], dtype=np.uint32)
        countries = result.merit._countries_of(sources)
        mixes = result.merit.router_mix_many(sources, countries)
        window = (0.0, 2 * result.clock.seconds_per_day)
        base = 1234567

        serial = parallel_flow_columns(
            scanners, mixes, result.merit.transit_view, window,
            result.clock.seconds_per_day, base,
            workers=1, use_processes=False,
        )
        run_dir = tmp_path / "flows"
        with pytest.raises(ShardFailedError):
            parallel_flow_columns(
                scanners, mixes, result.merit.transit_view, window,
                result.clock.seconds_per_day, base,
                workers=3, use_processes=False,
                retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                fault_plan=FaultPlan(kill={2: 1}),
                checkpoint_dir=run_dir,
            )
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        resumed = parallel_flow_columns(
            scanners, mixes, result.merit.transit_view, window,
            result.clock.seconds_per_day, base,
            workers=3, use_processes=False,
            telemetry=telemetry, checkpoint_dir=run_dir,
        )
        assert telemetry.health.checkpoint_hits == 2
        for name in ("router", "day", "src", "dport", "proto", "true"):
            assert np.array_equal(
                getattr(serial, name), getattr(resumed, name)
            )


class TestScheduledFaults:
    """Scheduling modes preserve the whole fault-tolerance contract:
    kills, interrupts and resumes still converge to the serial result,
    and a checkpointed run refuses to resume under a different plan."""

    @settings(deadline=None, max_examples=12)
    @given(
        workers=st.integers(1, 6),
        victim=st.integers(0, 5),
        schedule=st.sampled_from(["packed", "stealing"]),
    )
    def test_scheduled_kill_retry_identical(self, workers, victim, schedule):
        plan = FaultPlan(kill={victim % workers: 1})
        result = parallel_detect(
            _chunks(),
            600.0,
            _DARK_SIZE,
            _CONFIG,
            workers=workers,
            schedule=schedule,
            use_processes=False,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
            fault_plan=plan,
        )
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    @pytest.mark.parametrize("schedule", ["packed", "stealing"])
    def test_scheduled_interrupt_resume_identical(self, schedule, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ShardFailedError):
            parallel_detect(
                _chunks(), 600.0, _DARK_SIZE, _CONFIG,
                workers=3, schedule=schedule, use_processes=False,
                retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                fault_plan=FaultPlan(kill={1: 1}),
                checkpoint_dir=run_dir,
            )
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        result = parallel_detect(
            _chunks(), 600.0, _DARK_SIZE, _CONFIG,
            workers=3, schedule=schedule, use_processes=False,
            telemetry=telemetry, checkpoint_dir=run_dir,
        )
        # The plan is a pure function of (costs, workers, mode), so the
        # resume re-derives it and reloads every task that finished
        # before the injected kill.
        assert telemetry.health.checkpoint_hits >= 1
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    def test_schedule_change_refuses_resume(self, tmp_path):
        parallel_detect(
            _chunks(), 600.0, _DARK_SIZE, _CONFIG,
            workers=2, schedule="packed", use_processes=False,
            checkpoint_dir=tmp_path / "run",
        )
        with pytest.raises(ValueError, match="schedule"):
            parallel_detect(
                _chunks(), 600.0, _DARK_SIZE, _CONFIG,
                workers=2, schedule="stealing", use_processes=False,
                checkpoint_dir=tmp_path / "run",
            )

    def test_resume_run_restores_schedule(self, tmp_path):
        save_packets_chunked(_BATCH, tmp_path / "cap", 50_000.0)
        run_dir = tmp_path / "run"
        with pytest.raises(ShardFailedError):
            parallel_detect_directory(
                tmp_path / "cap", 600.0, _DARK_SIZE, _CONFIG,
                workers=3, schedule="stealing", use_processes=False,
                retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
                fault_plan=FaultPlan(kill={1: 1}),
                checkpoint_dir=run_dir,
            )
        result = resume_run(run_dir, use_processes=False)
        _assert_tables_identical(result.events, _REF_EVENTS)
        _assert_detections_identical(result.detections, _REF_DETECTIONS)

    @pytest.mark.parametrize("schedule", ["packed", "stealing"])
    def test_scheduled_flow_kill_retry_identical(self, schedule):
        from repro.flows.synthesis import synthesize_flow_columns
        from repro.sim.runner import run_scenario
        from repro.sim.scenario import tiny_scenario

        result = run_scenario(tiny_scenario(), mode="batch")
        scanners = result.flow_scanners()
        sources = np.array([int(s.src) for s in scanners], dtype=np.uint32)
        mixes = result.merit.router_mix_many(sources)
        window = (0.0, 2 * result.clock.seconds_per_day)
        day_seconds = result.clock.seconds_per_day
        base = 424242
        serial = synthesize_flow_columns(
            scanners, mixes, result.merit.transit_view, window,
            day_seconds, base,
        )
        faulted = parallel_flow_columns(
            scanners, mixes, result.merit.transit_view, window,
            day_seconds, base,
            workers=3, schedule=schedule, use_processes=False,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
            fault_plan=FaultPlan(kill={0: 1}),
        )
        for name in ("router", "day", "src", "dport", "proto", "true"):
            assert np.array_equal(
                getattr(serial, name), getattr(faulted, name)
            ), name


class TestRunHealthTelemetry:
    def test_health_rows_only_when_events(self):
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        rows = dict(telemetry.summary_rows())
        assert "shard retries" not in rows
        telemetry.health.retries = 3
        telemetry.health.record_quarantine("/cap/chunk-00001.npz")
        rows = dict(telemetry.summary_rows())
        assert rows["shard retries"] == "3"
        assert "chunk-00001.npz" in rows["quarantined"]

    def test_health_in_as_dict(self):
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        telemetry.health.respawns = 1
        payload = telemetry.as_dict()
        assert payload["health"]["respawns"] == 1

    def test_record_quarantine_dedupes(self):
        health = RunHealth()
        health.record_quarantine("/a")
        health.record_quarantine("/a")
        health.record_quarantine("/b")
        assert health.quarantined_chunks == ["/a", "/b"]
        assert health.quarantined == 2
        assert health.any_events()
