"""Tests for the full study report and packet-log serialization."""

import numpy as np
import pytest

from repro.core.report import render_full_report
from repro.io.packetlog import load_packets_npz, save_packets_npz
from repro.packet import PacketBatch
from tests.test_packet import make_batch


class TestFullReport:
    @pytest.fixture(scope="class")
    def text(self, tiny_report):
        return render_full_report(tiny_report)

    def test_all_sections_present(self, text):
        for heading in (
            "Dataset",
            "Detection (the three AH definitions)",
            "Temporal trends",
            "Top targeted services",
            "Origins",
            "Validation (acknowledged lists + honeypots)",
            "List churn",
            "Network impact (sampled flows)",
            "Network impact (packet streams)",
        ):
            assert heading in text, f"missing section {heading!r}"

    def test_definitions_enumerated(self, text):
        for definition in ("Definition 1", "Definition 2", "Definition 3"):
            assert definition in text

    def test_stations_listed(self, text):
        assert "merit" in text
        assert "campus" in text

    def test_report_is_plain_text(self, text):
        assert text.endswith("\n")
        assert "\t" not in text

    def test_cli_report(self, capsys):
        from repro import cli

        assert cli.main(["--scenario", "tiny", "report"]) == 0
        out = capsys.readouterr().out
        assert "full study report" in out
        assert "Jaccard" in out

    def test_darknet_only_report_skips_isp_sections(self):
        import dataclasses

        from repro.core.pipeline import run_study
        from repro.sim.scenario import tiny_scenario

        scenario = dataclasses.replace(
            tiny_scenario(),
            with_isp=False,
            with_campus=False,
            flow_days=(),
            stream_window=None,
        )
        text = render_full_report(run_study(scenario))
        assert "Network impact (sampled flows)" not in text
        assert "Network impact (packet streams)" not in text
        assert "Detection (the three AH definitions)" in text


class TestPacketLog:
    def test_roundtrip(self, tmp_path):
        batch = make_batch(500, seed=9)
        path = tmp_path / "capture.npz"
        save_packets_npz(batch, path)
        loaded = load_packets_npz(path)
        assert len(loaded) == 500
        assert np.array_equal(loaded.ts, batch.ts)
        assert np.array_equal(loaded.src, batch.src)
        assert np.array_equal(loaded.dst, batch.dst)
        assert np.array_equal(loaded.dport, batch.dport)
        assert np.array_equal(loaded.proto, batch.proto)
        assert np.array_equal(loaded.ipid, batch.ipid)
        assert loaded.src.dtype == np.uint32

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_packets_npz(PacketBatch.empty(), path)
        assert len(load_packets_npz(path)) == 0

    def test_magic_validated(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, magic=np.array("something-else"), ts=np.zeros(1))
        with pytest.raises(ValueError):
            load_packets_npz(path)

    def test_compression_effective(self, tmp_path):
        # A million-ish-row capture with much repetition compresses well.
        batch = make_batch(50_000, seed=1)
        batch.src[:] = 42  # constant column
        path = tmp_path / "capture.npz"
        save_packets_npz(batch, path)
        raw_bytes = sum(
            a.nbytes
            for a in (batch.ts, batch.src, batch.dst, batch.dport, batch.proto, batch.ipid)
        )
        assert path.stat().st_size < raw_bytes
