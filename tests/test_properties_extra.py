"""Additional property-based tests: churn, lists, streams, sampling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.churn import daily_churn, staleness
from repro.core.detection import DetectionResult
from repro.core.lists import BlocklistEntry, DailyBlocklist
from repro.flows.netflow import NetflowExporter
from repro.flows.stream import StreamSeries
from repro.io.listio import diff_blocklists, merge_blocklists


# ----------------------------------------------------------------------
# Churn
# ----------------------------------------------------------------------

daily_sets = st.dictionaries(
    st.integers(min_value=0, max_value=8),
    st.sets(st.integers(min_value=1, max_value=40), max_size=15),
    min_size=1,
    max_size=9,
)


def _detection(daily_active):
    sources = set()
    for s in daily_active.values():
        sources |= s
    return DetectionResult(
        definition=1, sources=sources, threshold=0.0, daily_active=daily_active
    )


@given(daily_sets)
def test_churn_points_are_consistent(daily_active):
    detection = _detection(daily_active)
    days = sorted(daily_active)
    for point, (prev, cur) in zip(daily_churn(detection), zip(days, days[1:])):
        assert point.day == cur
        assert point.active == len(daily_active[cur])
        assert point.retained + point.arrived == point.active
        assert point.retained + point.departed == len(daily_active[prev])
        assert 0.0 <= point.jaccard_with_previous <= 1.0


@given(daily_sets, st.integers(min_value=1, max_value=5))
def test_staleness_bounded(daily_active, refresh):
    value = staleness(_detection(daily_active), refresh)
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Blocklist diff / merge
# ----------------------------------------------------------------------

address_sets = st.sets(st.integers(min_value=1, max_value=100), max_size=25)


def _blocklist(day, addresses):
    return DailyBlocklist(
        day=day,
        entries=[
            BlocklistEntry(
                address=a,
                definitions=(1,),
                packets=a,
                asn=1,
                country="US",
                acknowledged=False,
            )
            for a in sorted(addresses)
        ],
    )


@given(address_sets, address_sets)
def test_diff_partitions_union(old_addresses, new_addresses):
    diff = diff_blocklists(_blocklist(0, old_addresses), _blocklist(1, new_addresses))
    union = set(diff.added) | set(diff.removed) | set(diff.retained)
    assert union == old_addresses | new_addresses
    assert set(diff.added).isdisjoint(diff.removed)
    assert set(diff.added) == new_addresses - old_addresses
    assert set(diff.removed) == old_addresses - new_addresses
    assert 0.0 <= diff.churn <= 1.0


@given(st.lists(address_sets, min_size=1, max_size=5))
def test_merge_tracks_latest_day(sets_by_day):
    blocklists = [_blocklist(day, s) for day, s in enumerate(sets_by_day)]
    merged = merge_blocklists(blocklists)
    for address, day in merged.items():
        assert address in sets_by_day[day]
        # No later day lists this address.
        for later in range(day + 1, len(sets_by_day)):
            assert address not in sets_by_day[later]


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------

pps_series = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1_000),  # ah
        st.integers(min_value=0, max_value=10_000),  # extra legit
    ),
    min_size=1,
    max_size=200,
)


@given(pps_series)
def test_stream_fractions_bounded(rows):
    ah = np.array([a for a, _ in rows], dtype=np.int64)
    total = ah + np.array([l for _, l in rows], dtype=np.int64)
    series = StreamSeries(
        network="t", start=0.0, total_pps=total, ah_pps=ah, slash24s=4
    )
    inst = series.instantaneous_fraction()
    cum = series.cumulative_fraction()
    assert np.all((inst >= 0.0) & (inst <= 1.0))
    assert np.all((cum >= 0.0) & (cum <= 1.0))
    if total.sum() > 0:
        assert cum[-1] == series.summary()["overall_fraction"]


@given(pps_series)
def test_stream_normalization_linear(rows):
    ah = np.array([a for a, _ in rows], dtype=np.int64)
    total = ah + 1
    series_a = StreamSeries(
        network="t", start=0.0, total_pps=total, ah_pps=ah, slash24s=2
    )
    series_b = StreamSeries(
        network="t", start=0.0, total_pps=total, ah_pps=ah, slash24s=8
    )
    assert np.allclose(
        series_a.normalized_ah_rate(), 4 * series_b.normalized_ah_rate()
    )


# ----------------------------------------------------------------------
# NetFlow sampling
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=200_000),
    st.sampled_from([1, 10, 100, 1_000]),
)
@settings(max_examples=50)
def test_sampling_never_exceeds_truth(true_count, rate):
    exporter = NetflowExporter(sampling_rate=rate)
    rng = np.random.default_rng(0)
    sampled = exporter.sample_count(true_count, rng)
    assert 0 <= sampled <= true_count


@given(st.integers(min_value=1_000, max_value=50_000))
@settings(max_examples=20)
def test_sampling_unbiased_in_expectation(true_count):
    exporter = NetflowExporter(sampling_rate=100)
    rng = np.random.default_rng(1)
    estimates = [
        exporter.sample_count(true_count, rng) * 100 for _ in range(200)
    ]
    mean = float(np.mean(estimates))
    sd = float(np.std(estimates)) / np.sqrt(len(estimates)) + 1e-9
    assert abs(mean - true_count) < 6 * sd + 0.01 * true_count
