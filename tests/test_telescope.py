"""Unit tests for the telescope and darknet capture."""

import numpy as np
import pytest

from repro.config import event_timeout_seconds
from repro.net.prefix import Prefix
from repro.scanners.base import Scanner
from repro.telescope.capture import DarknetCapture
from repro.telescope.darknet import Telescope
from tests.test_scanner_base import coverage_session


@pytest.fixture()
def telescope():
    return Telescope.from_prefix(Prefix.parse("10.0.0.0/20"))


def make_scanners(n=3, coverage=0.5):
    return [
        Scanner(src=100 + i, behavior="t", sessions=[coverage_session(coverage)], seed=i)
        for i in range(n)
    ]


class TestTelescope:
    def test_size(self, telescope):
        assert telescope.size == 4_096

    def test_view_name(self, telescope):
        assert telescope.view().name == "darknet"

    def test_default_timeout_matches_rule(self, telescope):
        assert telescope.default_timeout() == pytest.approx(
            event_timeout_seconds(4_096)
        )

    def test_capture_only_dark_destinations(self, telescope):
        capture = telescope.capture(make_scanners())
        assert telescope.prefixes.contains_array(capture.packets.dst).all()

    def test_capture_sorted(self, telescope):
        capture = telescope.capture(make_scanners(5))
        assert np.all(np.diff(capture.packets.ts) >= 0)

    def test_capture_window(self, telescope):
        scanners = [
            Scanner(
                src=1, behavior="t",
                sessions=[coverage_session(0.9, start=0.0, duration=100.0)], seed=1,
            )
        ]
        capture = telescope.capture(scanners, window=(50.0, 100.0))
        assert capture.packets.ts.min() >= 50.0


class TestCapture:
    def test_summary(self, telescope):
        capture = telescope.capture(make_scanners(4, coverage=0.9))
        summary = capture.summary()
        assert summary["packets"] == len(capture)
        assert summary["source_ips"] == 4
        assert summary["dark_size"] == 4_096
        assert summary["dest_ips"] <= 4_096

    def test_day_slice(self, telescope):
        scanners = [
            Scanner(
                src=1, behavior="t",
                sessions=[coverage_session(0.9, start=90_000.0, duration=100.0)],
                seed=1,
            )
        ]
        capture = telescope.capture(scanners)
        assert len(capture.day_slice(0, 86_400.0)) == 0
        assert len(capture.day_slice(1, 86_400.0)) == len(capture)

    def test_packets_from(self, telescope):
        capture = telescope.capture(make_scanners(3, coverage=1.0))
        per_source = capture.packets_from({100})
        assert per_source == 4_096
        assert capture.packets_from(set()) == 0
        assert capture.packets_from({100, 101}) == 8_192

    def test_select_sources(self, telescope):
        capture = telescope.capture(make_scanners(3))
        sub = capture.select_sources({101})
        assert np.all(sub.src == 101)

    def test_capture_resorts_unsorted_batch(self, telescope):
        scanners = make_scanners(2)
        batch = scanners[0].emit(telescope.view())
        shuffled = batch.select(np.random.default_rng(0).permutation(len(batch)))
        capture = DarknetCapture(packets=shuffled, telescope=telescope)
        assert np.all(np.diff(capture.packets.ts) >= 0)


class TestChunkedCaptureSource:
    def _capture(self, telescope):
        return telescope.capture(make_scanners(3, coverage=1.0))

    def test_covers_all_packets(self, telescope):
        from repro.telescope.chunks import ChunkedCaptureSource
        from repro.packet import PacketBatch

        capture = self._capture(telescope)
        source = ChunkedCaptureSource.from_capture(capture, 600.0)
        chunks = list(source)
        restored = PacketBatch.concat([c.packets for c in chunks])
        assert len(restored) == len(capture)
        assert np.array_equal(
            np.sort(restored.ts), np.sort(capture.packets.ts)
        )
        assert all(len(c) > 0 for c in chunks)
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_windows_epoch_aligned(self, telescope):
        from repro.telescope.chunks import ChunkedCaptureSource

        capture = self._capture(telescope)
        for chunk in ChunkedCaptureSource.from_capture(capture, 600.0):
            assert chunk.start % 600.0 == 0.0
            assert chunk.end == chunk.start + 600.0
            assert float(chunk.packets.ts.min()) >= chunk.start
            assert float(chunk.packets.ts.max()) < chunk.end

    def test_accepts_bare_batch(self, telescope):
        from repro.telescope.chunks import ChunkedCaptureSource

        capture = self._capture(telescope)
        from_batch = list(
            ChunkedCaptureSource.from_capture(capture.packets, 600.0)
        )
        from_capture = list(
            ChunkedCaptureSource.from_capture(capture, 600.0)
        )
        assert len(from_batch) == len(from_capture)

    def test_from_directory(self, telescope, tmp_path):
        from repro.io.packetlog import save_packets_chunked
        from repro.telescope.chunks import ChunkedCaptureSource
        from repro.packet import PacketBatch

        capture = self._capture(telescope)
        save_packets_chunked(capture.packets, tmp_path / "cap", 600.0)
        chunks = list(
            ChunkedCaptureSource.from_directory(tmp_path / "cap", 600.0)
        )
        restored = PacketBatch.concat([c.packets for c in chunks])
        assert len(restored) == len(capture)
        assert all(c.start % 600.0 == 0.0 for c in chunks)

    def test_invalid_chunk_seconds(self, telescope):
        from repro.telescope.chunks import ChunkedCaptureSource

        with pytest.raises(ValueError):
            ChunkedCaptureSource.from_capture(self._capture(telescope), 0.0)
