"""Unit tests for the scenario runner and result surface."""

import numpy as np
import pytest

from repro.sim.runner import run_scenario
from repro.sim.scenario import Scenario, tiny_scenario


class TestScenarioSurface:
    def test_window(self):
        scenario = tiny_scenario()
        assert scenario.window() == (0.0, scenario.days * 86_400.0)
        assert scenario.duration == scenario.days * 86_400.0

    def test_dark_prefix_matches_config(self, tiny_result):
        assert tiny_result.telescope.size == 2 ** (
            32 - tiny_result.scenario.dark_prefix_length
        )


class TestResultErrors:
    @pytest.fixture(scope="class")
    def darknet_only(self):
        import dataclasses

        scenario = dataclasses.replace(
            tiny_scenario(),
            with_isp=False,
            with_campus=False,
            flow_days=(),
            stream_window=None,
        )
        return run_scenario(scenario)

    def test_no_isp_model(self, darknet_only):
        assert darknet_only.merit is None
        assert darknet_only.campus is None
        with pytest.raises(RuntimeError, match="without an ISP"):
            darknet_only.collect_flows()
        with pytest.raises(RuntimeError, match="without stream"):
            darknet_only.record_streams()

    def test_detections_still_available(self, darknet_only):
        assert set(darknet_only.detections) == {1, 2, 3}
        assert len(darknet_only.capture) > 0

    def test_no_flow_days_configured(self):
        import dataclasses

        scenario = dataclasses.replace(tiny_scenario(), flow_days=())
        result = run_scenario(scenario)
        with pytest.raises(RuntimeError, match="no flow days"):
            result.collect_flows()


class TestResultHelpers:
    def test_ah_sources_per_definition(self, tiny_result):
        for definition in (1, 2, 3):
            assert tiny_result.ah_sources(definition) == (
                tiny_result.detections[definition].sources
            )

    def test_event_timeout_override(self):
        import dataclasses

        scenario = dataclasses.replace(tiny_scenario(), event_timeout=60.0)
        result = run_scenario(scenario)
        default = run_scenario(tiny_scenario())
        # A much shorter timeout shatters slow flows into more events.
        assert len(result.events) > len(default.events)

    def test_stream_custom_sources(self, tiny_result):
        # Passing an explicit AH set bypasses the cache and changes the
        # attributed traffic.
        custom = tiny_result.record_streams(ah_sources=set())
        assert custom["merit"].ah_pps.sum() == 0
        cached = tiny_result.record_streams()
        assert cached["merit"].ah_pps.sum() > 0

    def test_flow_scanners_exclude_spoofed(self, tiny_result):
        srcs = {int(s.src) for s in tiny_result.flow_scanners()}
        assert 0 not in srcs
