"""Unit tests for the scenario runner and result surface."""

import dataclasses

import numpy as np
import pytest

from repro.sim.runner import run_scenario
from repro.sim.scenario import darknet_year_scenario, tiny_scenario

_EVENT_COLUMNS = (
    "src", "dport", "proto", "start", "end", "packets", "unique_dsts",
)


def _assert_same_outcome(batch_result, streaming_result):
    """Streaming and batch must agree on events and every detection."""
    for column in _EVENT_COLUMNS:
        assert np.array_equal(
            getattr(batch_result.events, column),
            getattr(streaming_result.events, column),
        ), column
    for definition in (1, 2, 3):
        b = batch_result.detections[definition]
        s = streaming_result.detections[definition]
        assert b.sources == s.sources
        assert b.threshold == s.threshold
        assert b.daily_new == s.daily_new
        assert b.daily_active == s.daily_active


class TestScenarioSurface:
    def test_window(self):
        scenario = tiny_scenario()
        assert scenario.window() == (0.0, scenario.days * 86_400.0)
        assert scenario.duration == scenario.days * 86_400.0

    def test_dark_prefix_matches_config(self, tiny_result):
        assert tiny_result.telescope.size == 2 ** (
            32 - tiny_result.scenario.dark_prefix_length
        )


class TestResultErrors:
    @pytest.fixture(scope="class")
    def darknet_only(self):
        import dataclasses

        scenario = dataclasses.replace(
            tiny_scenario(),
            with_isp=False,
            with_campus=False,
            flow_days=(),
            stream_window=None,
        )
        return run_scenario(scenario)

    def test_no_isp_model(self, darknet_only):
        assert darknet_only.merit is None
        assert darknet_only.campus is None
        with pytest.raises(RuntimeError, match="without an ISP"):
            darknet_only.collect_flows()
        with pytest.raises(RuntimeError, match="without stream"):
            darknet_only.record_streams()

    def test_detections_still_available(self, darknet_only):
        assert set(darknet_only.detections) == {1, 2, 3}
        assert len(darknet_only.capture) > 0

    def test_no_flow_days_configured(self):
        import dataclasses

        scenario = dataclasses.replace(tiny_scenario(), flow_days=())
        result = run_scenario(scenario)
        with pytest.raises(RuntimeError, match="no flow days"):
            result.collect_flows()


class TestStreamingMode:
    @pytest.fixture(scope="class")
    def tiny_streaming(self):
        return run_scenario(tiny_scenario(), mode="streaming")

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_scenario(tiny_scenario(), mode="bogus")

    def test_matches_batch_on_tiny(self, tiny_result, tiny_streaming):
        _assert_same_outcome(tiny_result, tiny_streaming)

    def test_mode_and_telemetry_attached(self, tiny_result, tiny_streaming):
        assert tiny_result.mode == "batch"
        assert tiny_result.telemetry is None
        assert tiny_streaming.mode == "streaming"
        telemetry = tiny_streaming.telemetry
        assert telemetry is not None
        assert telemetry.total_packets == len(tiny_streaming.capture)
        assert telemetry.total_events == len(tiny_streaming.events)
        assert telemetry.chunks > 1
        assert telemetry.watermark == float(
            tiny_streaming.capture.packets.ts.max()
        )
        # Watermark lag is bounded by one chunk window.
        assert 0 <= telemetry.max_watermark_lag <= telemetry.chunk_seconds
        assert set(telemetry.stages) == {"generate", "detect"}

    def test_bounded_open_flow_state(self, tiny_streaming):
        telemetry = tiny_streaming.telemetry
        # The detector never holds the full event population as open
        # state, and finish() flushes everything.
        assert 0 < telemetry.peak_open_flows < len(tiny_streaming.events)
        assert telemetry.final_open_flows == 0

    def test_chunk_seconds_from_scenario(self):
        scenario = dataclasses.replace(
            tiny_scenario(), chunk_seconds=43_200.0
        )
        result = run_scenario(scenario, mode="streaming")
        assert result.telemetry.chunk_seconds == 43_200.0
        assert result.telemetry.chunks <= scenario.days * 2 + 1

    def test_explicit_chunk_seconds_wins(self):
        scenario = dataclasses.replace(
            tiny_scenario(), chunk_seconds=43_200.0
        )
        result = run_scenario(
            scenario, mode="streaming", chunk_seconds=86_400.0
        )
        assert result.telemetry.chunk_seconds == 86_400.0


class TestStreamingDarknet2021:
    """The acceptance scenario: darknet-2021 (shortened horizon, same
    population and code paths) must stream to identical detections with
    bounded open-flow state."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return darknet_year_scenario(2021, days=6)

    @pytest.fixture(scope="class")
    def batch_result(self, scenario):
        return run_scenario(scenario)

    @pytest.fixture(scope="class")
    def streaming_result(self, scenario):
        return run_scenario(scenario, mode="streaming")

    def test_identical_detections(self, batch_result, streaming_result):
        assert len(batch_result.events) > 50_000
        assert all(
            len(batch_result.detections[d].sources) > 0 for d in (1, 2, 3)
        )
        _assert_same_outcome(batch_result, streaming_result)

    def test_bounded_open_flow_state(self, streaming_result):
        telemetry = streaming_result.telemetry
        assert telemetry.final_open_flows == 0
        # Peak live state stays a fraction of the event population: the
        # pipeline never degenerates into holding everything open.
        assert 0 < telemetry.peak_open_flows < len(streaming_result.events) // 2


class TestResultHelpers:
    def test_ah_sources_per_definition(self, tiny_result):
        for definition in (1, 2, 3):
            assert tiny_result.ah_sources(definition) == (
                tiny_result.detections[definition].sources
            )

    def test_event_timeout_override(self):
        import dataclasses

        scenario = dataclasses.replace(tiny_scenario(), event_timeout=60.0)
        result = run_scenario(scenario)
        default = run_scenario(tiny_scenario())
        # A much shorter timeout shatters slow flows into more events.
        assert len(result.events) > len(default.events)

    def test_stream_custom_sources(self, tiny_result):
        # Passing an explicit AH set bypasses the cache and changes the
        # attributed traffic.
        custom = tiny_result.record_streams(ah_sources=set())
        assert custom["merit"].ah_pps.sum() == 0
        cached = tiny_result.record_streams()
        assert cached["merit"].ah_pps.sum() > 0

    def test_flow_scanners_exclude_spoofed(self, tiny_result):
        srcs = {int(s.src) for s in tiny_result.flow_scanners()}
        assert 0 not in srcs
