"""Unit tests for the network-impact analyses."""

import numpy as np
import pytest

from repro.core import impact
from repro.flows.netflow import FlowTable
from repro.packet import PacketBatch


def flow_table(rows):
    """rows: (router, day, src, dport, proto, packets)."""
    return FlowTable.from_rows([r + (r[5],) for r in rows])


def packet_batch(rows):
    """rows: (src, dport, proto)."""
    n = len(rows)
    arr = np.array(rows, dtype=np.int64)
    return PacketBatch(
        ts=np.zeros(n),
        src=arr[:, 0].astype(np.uint32),
        dst=np.arange(n, dtype=np.uint32),
        dport=arr[:, 1].astype(np.uint16),
        proto=arr[:, 2].astype(np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


class TestDailyImpact:
    def test_basic_fractions(self):
        flows = flow_table(
            [
                (0, 0, 100, 80, 6, 5_000),
                (0, 0, 200, 23, 6, 3_000),
                (1, 0, 100, 80, 6, 1_000),
            ]
        )
        totals = {(0, 0): 100_000, (1, 0): 50_000}
        cells = impact.daily_impact(flows, totals, {100, 200})
        by_router = {c.router: c for c in cells}
        assert by_router[0].ah_packets == 8_000
        assert by_router[0].fraction == pytest.approx(0.08)
        assert by_router[1].fraction == pytest.approx(0.02)

    def test_non_ah_sources_excluded(self):
        flows = flow_table([(0, 0, 100, 80, 6, 5_000), (0, 0, 999, 80, 6, 7_000)])
        cells = impact.daily_impact(flows, {(0, 0): 100_000}, {100})
        assert cells[0].ah_packets == 5_000

    def test_zero_total(self):
        cell = impact.ImpactCell(router=0, day=0, ah_packets=0, total_packets=0)
        assert cell.fraction == 0.0

    def test_average_impact(self):
        cells = [
            impact.ImpactCell(0, 0, 10, 100),
            impact.ImpactCell(0, 1, 30, 100),
            impact.ImpactCell(1, 0, 5, 100),
        ]
        avg = impact.average_impact(cells)
        assert avg[0] == (20.0, pytest.approx(0.2))
        assert avg[1] == (5.0, pytest.approx(0.05))

    def test_ordering(self):
        flows = flow_table([])
        totals = {(1, 1): 10, (0, 0): 10, (0, 1): 10, (1, 0): 10}
        cells = impact.daily_impact(flows, totals, set())
        keys = [(c.day, c.router) for c in cells]
        assert keys == sorted(keys)


class TestProtocolBreakdown:
    def test_shares_align(self):
        dark = packet_batch(
            [(1, 80, 6)] * 9 + [(1, 53, 17)] * 1
        )
        flows = flow_table(
            [(0, 0, 1, 80, 6, 90), (0, 0, 1, 53, 17, 10)]
        )
        out = impact.protocol_breakdown(dark, flows, {1})
        assert out["darknet"]["TCP-SYN"] == pytest.approx(0.9)
        assert out["flows"]["TCP-SYN"] == pytest.approx(0.9)
        assert out["darknet"]["UDP"] == pytest.approx(0.1)
        assert out["flows"]["ICMP Ech Rqst"] == 0.0

    def test_empty_sources(self):
        dark = packet_batch([(1, 80, 6)])
        flows = flow_table([(0, 0, 1, 80, 6, 10)])
        out = impact.protocol_breakdown(dark, flows, set())
        assert all(v == 0.0 for v in out["darknet"].values())


class TestAckedImpact:
    def test_per_router(self):
        flows = flow_table(
            [(0, 3, 50, 443, 6, 1_000), (1, 3, 50, 443, 6, 2_000), (1, 3, 60, 80, 6, 500)]
        )
        totals = {(0, 3): 10_000, (1, 3): 20_000, (2, 3): 5_000}
        out = impact.acked_impact(flows, totals, {50, 60}, day=3)
        assert out[0] == (1_000, pytest.approx(0.1))
        assert out[1] == (2_500, pytest.approx(0.125))
        assert out[2] == (0, 0.0)

    def test_day_filter(self):
        flows = flow_table([(0, 1, 50, 443, 6, 1_000), (0, 2, 50, 443, 6, 9_999)])
        totals = {(0, 1): 10_000, (0, 2): 10_000}
        out = impact.acked_impact(flows, totals, {50}, day=1)
        assert out[0][0] == 1_000


class TestRouterCoverage:
    def test_fractions(self):
        flows = flow_table(
            [
                (0, 0, 1, 80, 6, 10),
                (0, 0, 2, 80, 6, 10),
                (1, 0, 1, 80, 6, 10),
                (2, 0, 3, 80, 6, 10),
            ]
        )
        rows = impact.router_coverage(flows, {0: {1, 2, 3, 4}}, router_count=3)
        assert rows[0]["active_ah"] == 4
        assert rows[0]["seen_fraction"] == [0.5, 0.25, 0.25]

    def test_empty_day_skipped(self):
        rows = impact.router_coverage(flow_table([]), {0: set()}, router_count=1)
        assert rows == []


class TestPortConsistency:
    def test_diagonal_when_identical(self):
        dark = packet_batch([(1, 80, 6)] * 8 + [(1, 23, 6)] * 2)
        flows = flow_table([(0, 0, 1, 80, 6, 80), (0, 0, 1, 23, 6, 20)])
        rows = impact.port_consistency(dark, flows, {1})
        shares = {(r[0], r[1]): (r[2], r[3]) for r in rows}
        assert shares[(80, 6)][0] == pytest.approx(shares[(80, 6)][1])
        assert impact.rank_correlation(rows) == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        rows = [(80, 6, 0.9, 0.1), (23, 6, 0.5, 0.5), (22, 6, 0.1, 0.9)]
        assert impact.rank_correlation(rows) == pytest.approx(-1.0)

    def test_rank_correlation_short(self):
        assert impact.rank_correlation([(80, 6, 0.5, 0.5)]) == 1.0

    def test_top_n_union(self):
        dark = packet_batch([(1, port, 6) for port in range(50) for _ in range(2)])
        flows = flow_table([(0, 0, 1, 9_999, 6, 100)])
        rows = impact.port_consistency(dark, flows, {1}, top_n=5)
        keys = {(r[0], r[1]) for r in rows}
        assert (9_999, 6) in keys
        assert len(rows) <= 11


class TestRouterCoverageVectorized:
    """The np.isin-based coverage must match the set-arithmetic form."""

    def test_matches_set_reference(self):
        rng = np.random.default_rng(13)
        n = 2_000
        rows = [
            (
                int(rng.integers(0, 4)),
                int(rng.integers(0, 3)),
                int(rng.integers(1, 400)),
                80,
                6,
                int(rng.integers(1, 100)),
            )
            for _ in range(n)
        ]
        flows = flow_table(rows)
        daily_active = {
            day: {int(s) for s in rng.integers(1, 400, size=150)}
            for day in range(3)
        }
        rows_out = impact.router_coverage(flows, daily_active, router_count=4)

        for row in rows_out:
            day = row["day"]
            active = daily_active[day]
            day_flows = flows.select(flows.day == day)
            for router in range(4):
                seen = {
                    int(s)
                    for s in np.unique(
                        day_flows.src[day_flows.router == router]
                    )
                }
                expected = len(seen & active) / len(active)
                assert row["seen_fraction"][router] == pytest.approx(expected)
