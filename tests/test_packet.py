"""Unit tests for PacketBatch."""

import numpy as np
import pytest

from repro.packet import PacketBatch, Protocol, merge_sorted


def make_batch(n=5, proto=Protocol.TCP_SYN, seed=0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=rng.random(n) * 100,
        src=rng.integers(0, 2**32, n, dtype=np.int64).astype(np.uint32),
        dst=rng.integers(0, 2**32, n, dtype=np.int64).astype(np.uint32),
        dport=rng.integers(0, 65536, n, dtype=np.int64).astype(np.uint16),
        proto=np.full(n, proto.value, dtype=np.uint8),
        ipid=rng.integers(0, 65536, n, dtype=np.int64).astype(np.uint16),
    )


class TestConstruction:
    def test_empty(self):
        batch = PacketBatch.empty()
        assert len(batch) == 0
        assert batch.ts.dtype == np.float64

    def test_mismatched_lengths_rejected(self):
        good = make_batch(3)
        with pytest.raises(ValueError):
            PacketBatch(
                ts=good.ts,
                src=good.src[:2],
                dst=good.dst,
                dport=good.dport,
                proto=good.proto,
                ipid=good.ipid,
            )

    def test_dtype_coercion(self):
        batch = PacketBatch(
            ts=[1.0, 2.0],
            src=[1, 2],
            dst=[3, 4],
            dport=[80, 443],
            proto=[6, 17],
            ipid=[0, 1],
        )
        assert batch.src.dtype == np.uint32
        assert batch.dport.dtype == np.uint16


class TestConcatSelect:
    def test_concat_preserves_total(self):
        a, b = make_batch(4, seed=1), make_batch(6, seed=2)
        merged = PacketBatch.concat([a, b])
        assert len(merged) == 10
        assert np.array_equal(merged.src[:4], a.src)

    def test_concat_skips_empty(self):
        a = make_batch(3)
        merged = PacketBatch.concat([PacketBatch.empty(), a, PacketBatch.empty()])
        assert len(merged) == 3

    def test_concat_nothing(self):
        assert len(PacketBatch.concat([])) == 0

    def test_select_mask(self):
        batch = make_batch(10)
        mask = batch.ts > np.median(batch.ts)
        out = batch.select(mask)
        assert len(out) == int(mask.sum())

    def test_sorted_by_time(self):
        batch = make_batch(50)
        out = batch.sorted_by_time()
        assert np.all(np.diff(out.ts) >= 0)
        assert len(out) == 50

    def test_time_slice(self):
        batch = make_batch(100)
        out = batch.time_slice(20.0, 60.0)
        assert np.all((out.ts >= 20.0) & (out.ts < 60.0))

    def test_merge_sorted(self):
        merged = merge_sorted([make_batch(5, seed=1), make_batch(5, seed=2)])
        assert np.all(np.diff(merged.ts) >= 0)


class TestAnalysisHelpers:
    def test_unique_sources(self):
        batch = make_batch(20)
        batch.src[:] = 7
        assert batch.unique_sources().tolist() == [7]

    def test_protocol_counts(self):
        tcp = make_batch(4, Protocol.TCP_SYN, seed=3)
        udp = make_batch(6, Protocol.UDP, seed=4)
        counts = PacketBatch.concat([tcp, udp]).protocol_counts()
        assert counts[Protocol.TCP_SYN] == 4
        assert counts[Protocol.UDP] == 6
        assert counts[Protocol.ICMP_ECHO] == 0

    def test_validate_invariants_catches_bad_proto(self):
        batch = make_batch(3)
        batch.proto[0] = 99
        with pytest.raises(ValueError):
            batch.validate_invariants()

    def test_validate_invariants_catches_icmp_port(self):
        batch = make_batch(3, Protocol.ICMP_ECHO)
        batch.dport[:] = 0
        batch.validate_invariants()
        batch.dport[1] = 80
        with pytest.raises(ValueError):
            batch.validate_invariants()

    def test_protocol_labels(self):
        assert Protocol.TCP_SYN.label() == "TCP-SYN"
        assert Protocol.UDP.label() == "UDP"
        assert Protocol.ICMP_ECHO.label() == "ICMP Ech Rqst"
