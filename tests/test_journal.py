"""Tests for the write-ahead chunk journal (repro.serve.journal)."""

import os

import pytest

from repro.core.telemetry import RunHealth
from repro.serve.journal import (
    BATCH_FSYNC_RECORDS,
    ChunkJournal,
    JournalError,
    chunk_digest,
    pack_record,
    scan_segment,
    segment_path,
)


def _records(journal, after=0):
    return list(journal.replay(after))


class TestFraming:
    def test_pack_scan_round_trip(self, tmp_path):
        path = tmp_path / "seg.wal"
        payloads = [b"alpha", b"beta" * 100, b"\x00" * 7]
        path.write_bytes(
            b"".join(pack_record(i + 1, p) for i, p in enumerate(payloads))
        )
        records, good, torn = scan_segment(path)
        assert not torn
        assert good == path.stat().st_size
        assert [r.seq for r in records] == [1, 2, 3]
        assert [r.payload for r in records] == payloads
        assert all(r.digest == chunk_digest(r.payload) for r in records)

    def test_missing_file_scans_empty(self, tmp_path):
        assert scan_segment(tmp_path / "ghost.wal") == ([], 0, False)

    def test_short_header_is_torn(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(pack_record(1, b"ok") + b"RJ1")
        records, good, torn = scan_segment(path)
        assert torn and len(records) == 1
        assert good == len(pack_record(1, b"ok"))

    def test_truncated_payload_is_torn(self, tmp_path):
        path = tmp_path / "seg.wal"
        whole = pack_record(1, b"ok") + pack_record(2, b"x" * 64)
        path.write_bytes(whole[:-5])
        records, good, torn = scan_segment(path)
        assert torn and [r.seq for r in records] == [1]

    def test_bad_magic_is_torn(self, tmp_path):
        path = tmp_path / "seg.wal"
        second = bytearray(pack_record(2, b"two"))
        second[:4] = b"XXXX"
        path.write_bytes(pack_record(1, b"one") + bytes(second))
        records, _, torn = scan_segment(path)
        assert torn and [r.seq for r in records] == [1]

    def test_flipped_payload_bit_is_torn(self, tmp_path):
        path = tmp_path / "seg.wal"
        raw = bytearray(pack_record(1, b"payload-bytes"))
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        records, good, torn = scan_segment(path)
        assert torn and records == [] and good == 0

    def test_torn_tail_quarantined_on_health(self, tmp_path):
        path = tmp_path / "seg.wal"
        good = pack_record(1, b"fine")
        path.write_bytes(good + b"garbage")
        health = RunHealth()
        scan_segment(path, health=health)
        assert health.quarantined_chunks == [f"{path}@+{len(good)}"]


class TestAppendReplay:
    def test_round_trip_and_sequencing(self, tmp_path):
        journal = ChunkJournal(tmp_path)
        assert journal.append(b"a") == 1
        assert journal.append(b"b") == 2
        got = _records(journal)
        assert [(r.seq, r.payload) for r in got] == [(1, b"a"), (2, b"b")]
        assert _records(journal, after=1)[0].payload == b"b"

    def test_empty_payload_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ChunkJournal(tmp_path).append(b"")

    def test_bad_fsync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            ChunkJournal(tmp_path, fsync="sometimes")

    def test_rotation_spreads_segments(self, tmp_path):
        journal = ChunkJournal(tmp_path, segment_bytes=1)
        for i in range(5):
            journal.append(bytes([65 + i]) * 10)
        assert len(list(tmp_path.glob("segment-*.wal"))) == 5
        assert [r.seq for r in _records(journal)] == [1, 2, 3, 4, 5]

    def test_reopen_resumes_sequence(self, tmp_path):
        journal = ChunkJournal(tmp_path)
        journal.append(b"one")
        journal.append(b"two")
        journal.close()
        reopened = ChunkJournal(tmp_path)
        assert reopened.next_seq == 3
        assert reopened.append(b"three") == 3
        assert [r.payload for r in _records(reopened)] == [
            b"one",
            b"two",
            b"three",
        ]

    def test_reopen_truncates_torn_tail_and_quarantines(self, tmp_path):
        journal = ChunkJournal(tmp_path)
        journal.append(b"keep-me")
        journal.close()
        path = next(tmp_path.glob("segment-*.wal"))
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(pack_record(2, b"torn")[:-2])
        health = RunHealth()
        reopened = ChunkJournal(tmp_path, health=health)
        # The damaged suffix is gone from disk, accounted on health,
        # and new appends continue cleanly after the last good record.
        assert path.stat().st_size == intact
        assert health.quarantined_chunks == [f"{path}@+{intact}"]
        assert reopened.append(b"after") == 2
        assert [r.payload for r in _records(reopened)] == [
            b"keep-me",
            b"after",
        ]

    def test_append_failure_raises_journal_error(self, tmp_path):
        journal = ChunkJournal(tmp_path)
        journal.append(b"fine")

        class _FullDisk:
            def write(self, data):
                raise OSError(28, "No space left on device")

            def flush(self):
                pass

            def close(self):
                pass

            def fileno(self):
                raise OSError(9, "Bad file descriptor")

        journal._file = _FullDisk()
        with pytest.raises(JournalError, match="No space left"):
            journal.append(b"doomed")


class TestFsyncPolicies:
    def test_always_fsyncs_every_record(self, tmp_path):
        journal = ChunkJournal(tmp_path, fsync="always")
        for _ in range(3):
            journal.append(b"x")
        assert journal.fsyncs == 3

    def test_off_never_fsyncs(self, tmp_path):
        journal = ChunkJournal(tmp_path, fsync="off")
        for _ in range(3):
            journal.append(b"x")
        journal.close()
        assert journal.fsyncs == 0

    def test_batch_amortizes(self, tmp_path):
        journal = ChunkJournal(tmp_path, fsync="batch")
        for _ in range(BATCH_FSYNC_RECORDS + 1):
            journal.append(b"x")
        assert journal.fsyncs == 1
        # ...but the records are already in the kernel: a scan of the
        # file (what a crash-restarted process does) sees all of them.
        assert len(_records(journal)) == BATCH_FSYNC_RECORDS + 1


class TestTruncation:
    def test_truncate_through_deletes_covered_segments(self, tmp_path):
        journal = ChunkJournal(tmp_path, segment_bytes=1)
        for i in range(4):
            journal.append(bytes([97 + i]))
        assert journal.truncate_through(2) == 2
        assert [r.seq for r in _records(journal)] == [3, 4]
        # Idempotent; covering everything empties the directory.
        assert journal.truncate_through(2) == 0
        journal.truncate_through(4)
        assert list(tmp_path.glob("segment-*.wal")) == []

    def test_active_segment_survives_partial_coverage(self, tmp_path):
        journal = ChunkJournal(tmp_path)  # one big active segment
        for i in range(3):
            journal.append(bytes([97 + i]))
        # seq 2 < last seq 3: the active segment must stay.
        assert journal.truncate_through(2) == 0
        assert [r.seq for r in _records(journal)] == [1, 2, 3]

    def test_ensure_next_seq_after_total_truncation(self, tmp_path):
        journal = ChunkJournal(tmp_path)
        for _ in range(3):
            journal.append(b"x")
        journal.truncate_through(3)
        journal.close()
        reopened = ChunkJournal(tmp_path)
        assert reopened.next_seq == 1  # nothing on disk to resume from
        reopened.ensure_next_seq(4)  # ...so the engine's watermark rules
        assert reopened.append(b"new") == 4

    def test_reset_clears_everything(self, tmp_path):
        journal = ChunkJournal(tmp_path)
        journal.append(b"stale")
        journal.reset()
        assert _records(journal) == []
        assert journal.append(b"fresh") == 1

    def test_stats_shape(self, tmp_path):
        journal = ChunkJournal(tmp_path, fsync="always")
        journal.append(b"x")
        stats = journal.stats()
        assert stats["appends"] == 1
        assert stats["fsyncs"] == 1
        assert stats["segments"] == 1
        assert stats["next_seq"] == 2
        assert stats["fsync"] == "always"
        assert stats["bytes_appended"] == os.path.getsize(
            segment_path(journal.directory, 1)
        )
