"""Unit tests for the synthetic Internet address plan."""

import numpy as np
import pytest

from repro.net.asn import ASType, AutonomousSystem
from repro.net.internet import (
    Internet,
    InternetConfig,
    PrefixAllocator,
    build_internet,
    with_systems,
)
from repro.net.prefix import PrefixSet


class TestPrefixAllocator:
    def test_sequential_disjoint(self):
        alloc = PrefixAllocator()
        a = alloc.allocate(16)
        b = alloc.allocate(20)
        c = alloc.allocate(16)
        assert a.end <= b.base
        assert b.end <= c.base

    def test_alignment(self):
        alloc = PrefixAllocator()
        alloc.allocate(24)
        p = alloc.allocate(16)
        assert p.base % p.size == 0

    def test_exhaustion(self):
        alloc = PrefixAllocator(start=2**32 - 256)
        alloc.allocate(24)
        with pytest.raises(RuntimeError):
            alloc.allocate(24)


class TestBuildInternet:
    def test_deterministic(self):
        a = build_internet(InternetConfig(seed=5, core_as_count=20, tail_as_count=10))
        b = build_internet(InternetConfig(seed=5, core_as_count=20, tail_as_count=10))
        assert [s.asn for s in a.registry] == [s.asn for s in b.registry]
        assert [str(p) for s in a.registry for p in s.prefixes] == [
            str(p) for s in b.registry for p in s.prefixes
        ]

    def test_seed_changes_plan(self):
        a = build_internet(InternetConfig(seed=5, core_as_count=20, tail_as_count=10))
        b = build_internet(InternetConfig(seed=6, core_as_count=20, tail_as_count=10))
        assert [str(p) for s in a.registry for p in s.prefixes] != [
            str(p) for s in b.registry for p in s.prefixes
        ]

    def test_as_counts(self, small_internet):
        cfg = small_internet.config
        # core + tail + the flagship hyperscale cloud.
        assert len(small_internet.registry) == cfg.core_as_count + cfg.tail_as_count + 1

    def test_all_prefixes_disjoint(self, small_internet):
        # PrefixSet raises on overlap, so construction is the check.
        PrefixSet([p for s in small_internet.registry for p in s.prefixes])

    def test_country_diversity(self, small_internet):
        countries = {s.country for s in small_internet.registry}
        assert len(countries) >= 20

    def test_mix_includes_us_cloud(self, small_internet):
        assert small_internet.systems_of_type(ASType.CLOUD, "US")

    def test_sample_hosts_in_as(self, small_internet, rng):
        system = small_internet.registry.systems[0]
        hosts = small_internet.sample_hosts(rng, system, 50)
        owner = small_internet.registry.lookup_index(hosts)
        assert np.all(owner == 0)


class TestWithSystems:
    def test_extends_registry(self, small_internet):
        prefix = small_internet.allocator.allocate(20)
        extra = AutonomousSystem(
            asn=64000, org="new", country="US", as_type=ASType.EDU, prefixes=(prefix,)
        )
        extended = with_systems(small_internet, [extra])
        assert extended.registry.by_asn(64000).org == "new"
        # Original registry untouched.
        with pytest.raises(KeyError):
            small_internet.registry.by_asn(64000)
