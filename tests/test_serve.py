"""Tests for the ingestion service (repro.serve.server/client/loadgen).

Runs the real asyncio server on a background thread bound to an
ephemeral port and drives it with the real stdlib client — the same
code path the serve-smoke CI job exercises, minus the subprocess.
"""

import threading

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.packet import PacketBatch, Protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.loadgen import DriveStats, chunk_payloads, drive
from repro.serve.server import ServerThread
from repro.serve.tenants import TenantConfig, TenantRegistry

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)
_TIMEOUT = 600.0


def _capture(seed, n=6_000, duration=150_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 120, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _offline_ah(batch, definition):
    events = build_events(batch, _TIMEOUT)
    return detect_all(events, _DARK_SIZE, _CONFIG)[definition].sources


def _tenant_config(**overrides) -> TenantConfig:
    base = dict(
        timeout=_TIMEOUT,
        dark_size=_DARK_SIZE,
        detection=_CONFIG,
        snapshot_every_chunks=None,
        queue_depth=4,
    )
    base.update(overrides)
    return TenantConfig(**base)


@pytest.fixture()
def server(tmp_path):
    registry = TenantRegistry(tmp_path / "snap")
    thread = ServerThread(registry)
    host, port = thread.start()
    client = ServeClient(host, port)
    try:
        yield client, thread, tmp_path / "snap"
    finally:
        client.close()
        thread.stop()


class TestEndpoints:
    def test_health_on_empty_server(self, server):
        client, _, _ = server
        payload = client.health()
        assert payload["ok"] is True
        assert payload["tenants"] == {}
        assert payload["fold_processes"] >= 1

    def test_unknown_routes(self, server):
        client, _, _ = server
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/tenants/ghost/ah")[0] == 404
        assert client.request("POST", "/tenants/ghost/chunks", b"x")[0] == 404
        assert client.request("PATCH", "/tenants/ghost")[0] == 405

    def test_tenant_crud(self, server):
        client, _, _ = server
        created = client.create_tenant("t0", _tenant_config())
        assert created["tenant"] == "t0"
        # Idempotent re-PUT with the same config; conflict otherwise.
        client.create_tenant("t0", _tenant_config())
        with pytest.raises(ServeError) as err:
            client.create_tenant("t0", _tenant_config(workers=2))
        assert err.value.status == 409
        assert client.request("GET", "/tenants")[1]["tenants"] == ["t0"]
        client.delete_tenant("t0")
        with pytest.raises(ServeError):
            client.status("t0")

    def test_bad_chunk_rejected_and_accounted(self, server):
        client, _, _ = server
        client.create_tenant("t0", _tenant_config())
        status, _ = client.ingest("t0", b"this is not an npz archive")
        assert status == 202  # queued; corruption surfaces at fold time
        client.sync("t0")
        tenant_status = client.status("t0")
        assert tenant_status["packets"] == 0
        assert len(tenant_status["errors"]) == 1
        assert "chunk" in tenant_status["errors"][0]

    def test_empty_chunk_rejected_upfront(self, server):
        client, _, _ = server
        client.create_tenant("t0", _tenant_config())
        assert client.ingest("t0", b"")[0] == 400

    def test_bad_definition_rejected(self, server):
        client, _, _ = server
        client.create_tenant("t0", _tenant_config())
        assert client.request("GET", "/tenants/t0/ah?definition=9")[0] == 400
        assert client.request("GET", "/tenants/t0/ah?definition=x")[0] == 400


class TestIngestParity:
    def test_two_tenants_match_offline_and_stay_isolated(self, server):
        client, _, _ = server
        batch_a, batch_b = _capture(11), _capture(22)
        client.create_tenant("a", _tenant_config())
        client.create_tenant("b", _tenant_config(workers=2))
        stats_a = drive(client, "a", chunk_payloads(batch_a, 3_600.0))
        stats_b = drive(client, "b", chunk_payloads(batch_b, 3_600.0))
        assert isinstance(stats_a, DriveStats)
        assert stats_a.packets == len(batch_a)
        for definition in (1, 2, 3):
            assert client.ah_sources("a", definition) == _offline_ah(
                batch_a, definition
            )
            assert client.ah_sources("b", definition) == _offline_ah(
                batch_b, definition
            )
        health = client.health()["tenants"]
        assert health["a"]["packets"] == len(batch_a)
        assert health["b"]["packets"] == len(batch_b)
        assert health["a"]["errors"] == 0

    def test_query_between_chunks_is_prefix_consistent(self, server):
        client, _, _ = server
        batch = _capture(33)
        client.create_tenant("t", _tenant_config())
        payloads = list(chunk_payloads(batch, 3_600.0))
        half = len(payloads) // 2
        drive(client, "t", payloads[:half])
        seen = int(client.status("t")["packets"])
        prefix = batch.select(slice(0, seen))
        assert client.ah_sources("t", 1) == _offline_ah(prefix, 1)
        drive(client, "t", payloads[half:])
        assert client.ah_sources("t", 1) == _offline_ah(batch, 1)


class TestCoalescingParity:
    """Micro-batched + pooled ingest is AH-identical to per-chunk.

    One capture, many tenants: coalesce budgets (per-chunk up to
    32-chunk micro-batches, byte-capped budgets), shard counts, and
    chunkings all vary — every variant must answer the exact offline
    AH sets for all three definitions.
    """

    def test_budget_and_chunking_matrix(self, server):
        client, _, _ = server
        batch = _capture(88)
        expected = {d: _offline_ah(batch, d) for d in (1, 2, 3)}
        variants = {
            "per-chunk": (_tenant_config(coalesce_chunks=1), 3_600.0),
            "pairs": (
                _tenant_config(coalesce_chunks=2, queue_depth=8),
                3_600.0,
            ),
            "deep": (
                _tenant_config(coalesce_chunks=32, queue_depth=16),
                1_800.0,
            ),
            "byte-capped": (
                _tenant_config(coalesce_bytes=1, queue_depth=8),
                3_600.0,
            ),
            "sharded": (
                _tenant_config(
                    workers=2, coalesce_chunks=32, queue_depth=16
                ),
                7_200.0,
            ),
            "coarse": (_tenant_config(), 50_000.0),
        }
        for name, (config, chunk_seconds) in variants.items():
            client.create_tenant(name, config)
            stats = drive(
                client, name, chunk_payloads(batch, chunk_seconds)
            )
            assert stats.packets == len(batch)
            status = client.status(name)
            assert status["packets"] == len(batch), name
            assert status["chunks"] == stats.chunks, name
            assert status["errors"] == [], name
            for definition in (1, 2, 3):
                assert (
                    client.ah_sources(name, definition)
                    == expected[definition]
                ), (name, definition)

    def test_serve_stats_account_folds(self, server):
        client, _, _ = server
        batch = _capture(99)
        client.create_tenant("t", _tenant_config(queue_depth=16))
        stats = drive(client, "t", chunk_payloads(batch, 3_600.0))
        serve = client.status("t")["serve"]
        assert serve["chunks_received"] == stats.chunks
        assert serve["packets_folded"] == len(batch)
        assert 1 <= serve["folds"] <= stats.chunks
        assert sum(serve["coalesce_histogram"].values()) == serve["folds"]
        assert serve["bytes_received"] == stats.bytes_sent


class TestBackPressure:
    def test_overflow_answers_429_with_retry_hint(self, server):
        client, _, _ = server
        # depth 1 and a single slow ingest thread: the queue fills as
        # soon as two chunks are in flight.  coalesce_chunks=1 keeps
        # the worker folding one chunk per wake-up so the queue
        # actually overflows.
        client.create_tenant(
            "slow", _tenant_config(queue_depth=1, coalesce_chunks=1)
        )
        payloads = [p for _, p in chunk_payloads(_capture(44), 600.0)]
        saw_429 = False
        accepted = 0
        for payload in payloads:
            while True:
                status, body = client.ingest("slow", payload)
                if status == 202:
                    accepted += 1
                    break
                assert status == 429
                assert body["retry_after"] > 0
                assert float(client.last_headers["retry-after"]) > 0
                saw_429 = True
        client.sync("slow")
        assert accepted == len(payloads)
        # Every chunk eventually landed despite the shedding.
        assert client.status("slow")["packets"] == len(_capture(44))
        assert saw_429, "queue depth 1 never shed load"

    def test_sustained_backpressure_no_loss_no_double_fold(self, server):
        """Fill the queue behind a gated fold; drain exactly once.

        The fold is blocked on an event so the burst is deterministic:
        the first chunk sits in the (stalled) fold, the queue holds
        ``queue_depth`` more, and the next POST must shed.  After
        releasing the gate every accepted chunk folds exactly once.
        """
        client, thread, _ = server
        depth = 3
        client.create_tenant("burst", _tenant_config(queue_depth=depth))
        tenant = thread.registry.get("burst")
        gate = threading.Event()
        started = threading.Event()
        real_ingest = tenant.ingest_payloads

        def gated(blobs, **kwargs):
            started.set()
            gate.wait(timeout=30)
            return real_ingest(blobs, **kwargs)

        tenant.ingest_payloads = gated
        pairs = list(chunk_payloads(_capture(45), 600.0))
        accepted_packets = 0
        accepted = 0
        rejected = 0
        for n_packets, payload in pairs:
            status, _ = client.ingest("burst", payload)
            if status == 202:
                accepted += 1
                accepted_packets += int(n_packets)
                if accepted == 1:
                    # Wait for the worker to pull the first chunk into
                    # the (stalled) fold, so the burst fills the queue
                    # deterministically behind it.
                    assert started.wait(timeout=10)
            else:
                assert status == 429
                assert "retry-after" in client.last_headers
                rejected += 1
            if accepted > depth and rejected:
                break
        assert rejected >= 1, "queue never overflowed behind the gate"
        # Mid-burst: /health must report the true queue depth — the
        # first chunk is in the stalled fold, the rest are queued.
        health = client.health()["tenants"]["burst"]
        assert health["queued"] == depth
        assert health["queue_depth"] == depth
        gate.set()
        tenant.ingest_payloads = real_ingest
        client.sync("burst")
        status = client.status("burst")
        # No accepted chunk lost, none folded twice.
        assert status["packets"] == accepted_packets
        assert status["chunks"] == accepted
        assert status["errors"] == []
        serve = status["serve"]
        assert serve["chunks_received"] == accepted
        assert sum(serve["coalesce_histogram"].values()) == serve["folds"]
        # The gated burst must have coalesced at least once.
        assert serve["max_coalesced_chunks"] >= 2

    def test_ingest_blocking_retries_through(self, server):
        client, _, _ = server
        client.create_tenant(
            "t", _tenant_config(queue_depth=1, coalesce_chunks=1)
        )
        stats = drive(
            client, "t", chunk_payloads(_capture(55), 600.0), backoff=0.01
        )
        assert client.status("t")["packets"] == stats.packets
        assert stats.ack_p50 is not None and stats.ack_p99 is not None
        assert stats.ack_p99 >= stats.ack_p50 >= 0.0
        assert len(stats.ack_seconds) == stats.chunks


class TestDurableIngest:
    def test_duplicate_post_acked_but_not_refolded(self, server):
        client, _, _ = server
        client.create_tenant("t", _tenant_config())
        payload = next(chunk_payloads(_capture(91), 3_600.0))[1]
        status, body = client.ingest("t", payload)
        assert status == 202 and "duplicate" not in body
        status, body = client.ingest("t", payload)
        assert status == 202 and body["duplicate"] is True
        client.sync("t")
        tenant_status = client.status("t")
        assert tenant_status["chunks"] == 1
        assert tenant_status["serve"]["duplicate_chunks"] == 1

    def test_journal_failure_answers_429_and_flags_health(self, server):
        client, thread, _ = server
        client.create_tenant("t", _tenant_config())
        tenant = thread.registry.get("t")
        payloads = [p for _, p in chunk_payloads(_capture(92), 3_600.0)]
        assert client.ingest("t", payloads[0])[0] == 202

        from repro.serve.journal import JournalError

        real_append = tenant.journal.append

        def _full_disk(payload, digest=None):
            raise JournalError("append failed: ENOSPC")

        tenant.journal.append = _full_disk
        status, body = client.ingest("t", payloads[1])
        assert status == 429
        assert "journal" in body["error"]
        assert float(client.last_headers["retry-after"]) > 0
        health = client.health()
        assert health["ok"] is False
        assert health["journal_degraded"] == ["t"]
        assert health["tenants"]["t"]["journal_degraded"] is True

        # The disk comes back: the same chunk is admitted and the
        # degraded flag clears.
        tenant.journal.append = real_append
        assert client.ingest("t", payloads[1])[0] == 202
        health = client.health()
        assert health["ok"] is True
        assert health["journal_degraded"] == []
        client.sync("t")
        serve = client.status("t")["serve"]
        assert serve["journal_failures"] == 1
        assert serve["journal_appends"] == 2

    def test_kill_without_snapshot_loses_nothing(self, server, tmp_path):
        # The pre-journal serve layer lost everything since the last
        # snapshot on an abrupt stop; now the journal carries it.
        client, thread, snap_dir = server
        batch = _capture(93)
        client.create_tenant("t", _tenant_config(workers=2))
        payloads = list(chunk_payloads(batch, 3_600.0))
        drive(client, "t", payloads, sync=True)
        client.close()
        thread.stop(snapshot=False)  # no graceful snapshot — a "crash"

        registry = TenantRegistry(snap_dir)
        revived = ServerThread(registry)
        host, port = revived.start()
        try:
            with ServeClient(host, port) as client2:
                status = client2.status("t")
                assert status["packets"] == len(batch)
                assert status["serve"]["replayed_chunks"] > 0
                for definition in (1, 2, 3):
                    assert client2.ah_sources(
                        "t", definition
                    ) == _offline_ah(batch, definition)
        finally:
            revived.stop()

    def test_journal_truncated_after_snapshot(self, server):
        client, thread, snap_dir = server
        client.create_tenant("t", _tenant_config())
        drive(client, "t", chunk_payloads(_capture(94), 3_600.0))
        client.snapshot("t")
        journal_dir = snap_dir / "t" / "journal"
        tenant = thread.registry.get("t")
        assert tenant.serve_stats.journal_appends > 0
        # Everything folded is snapshot-covered: no segments remain.
        assert list(journal_dir.glob("segment-*.wal")) == []


class TestClientBounceTolerance:
    def test_ingest_blocking_retries_connection_errors(self, server):
        client, _, _ = server
        client.create_tenant("t", _tenant_config())
        payload = next(chunk_payloads(_capture(95), 3_600.0))[1]
        real_ingest = client.ingest
        failures = iter([ConnectionResetError, OSError])

        def _flaky(tenant_id, body):
            exc = next(failures, None)
            if exc is not None:
                raise exc("server bouncing")
            return real_ingest(tenant_id, body)

        client.ingest = _flaky
        retries = client.ingest_blocking(
            "t", payload, backoff=0.001, connect_retries=4
        )
        assert retries == 2
        client.ingest = real_ingest
        client.sync("t")
        assert client.status("t")["chunks"] == 1

    def test_connect_retry_budget_exhausts(self):
        # No server at all: the budget bounds the failure.
        client = ServeClient("127.0.0.1", 1)  # port 1: nothing listens
        with pytest.raises(OSError):
            client.ingest_blocking(
                "t", b"x", backoff=0.001, connect_retries=2
            )

    def test_drive_reports_acks_via_callback(self, server):
        client, _, _ = server
        client.create_tenant("t", _tenant_config(queue_depth=16))
        acked = []
        stats = drive(
            client,
            "t",
            chunk_payloads(_capture(96), 3_600.0),
            on_ack=lambda index, n: acked.append((index, n)),
        )
        assert len(acked) == stats.chunks
        assert [i for i, _ in acked] == list(range(stats.chunks))
        assert sum(n for _, n in acked) == stats.packets


class TestKillAndRestore:
    def test_snapshot_restart_continue(self, server, tmp_path):
        client, thread, snap_dir = server
        batch = _capture(66)
        client.create_tenant("t", _tenant_config(workers=2))
        payloads = list(chunk_payloads(batch, 3_600.0))
        half = len(payloads) // 2
        drive(client, "t", payloads[:half])
        client.snapshot("t")
        client.close()
        # Abrupt stop: no graceful drain-and-snapshot.
        thread.stop(snapshot=False)

        registry = TenantRegistry(snap_dir)
        revived = ServerThread(registry)
        host, port = revived.start()
        try:
            with ServeClient(host, port) as client2:
                assert client2.status("t")["packets"] > 0
                drive(client2, "t", payloads[half:])
                for definition in (1, 2, 3):
                    assert client2.ah_sources(
                        "t", definition
                    ) == _offline_ah(batch, definition)
        finally:
            revived.stop()

    def test_recycle_endpoint_preserves_results(self, server):
        client, _, _ = server
        batch = _capture(77)
        client.create_tenant("t", _tenant_config())
        payloads = list(chunk_payloads(batch, 3_600.0))
        for i, (_, payload) in enumerate(payloads):
            client.ingest_blocking("t", payload)
            if i == len(payloads) // 2:
                assert client.recycle("t")["recycles"] >= 0
        client.sync("t")
        assert client.status("t")["recycles"] == 1
        assert client.ah_sources("t", 1) == _offline_ah(batch, 1)
