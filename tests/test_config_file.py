"""Tests for JSON scenario configuration files."""

import json

import pytest

from repro.sim.config_file import load_scenario, scenario_from_dict
from repro.sim.runner import run_scenario


MINIMAL = {
    "name": "unit",
    "seed": 9,
    "days": 2,
    "dark_prefix_length": 22,
    "alpha": 0.01,
    "population": {
        "n_sweepers": 6,
        "n_mirai_aggressive": 2,
        "n_mirai_small": 5,
        "n_omniscanners": 1,
        "omni_port_low": 50,
        "omni_port_high": 90,
        "n_multiport": 2,
        "n_small_scanners": 30,
        "n_misconfig": 20,
        "n_backscatter": 2,
        "n_spoofed_scans": 1,
        "acked_fleet_scale": 1.0,
    },
}


class TestParsing:
    def test_minimal(self):
        scenario = scenario_from_dict(dict(MINIMAL))
        assert scenario.name == "unit"
        assert scenario.days == 2
        assert scenario.population.n_sweepers == 6
        assert scenario.population.seed == 9
        assert scenario.population.duration == 2 * 86_400.0
        assert scenario.detection.alpha == 0.01
        assert not scenario.with_isp

    def test_defaults(self):
        scenario = scenario_from_dict({})
        assert scenario.name == "custom"
        assert scenario.days == 7
        assert scenario.detection.alpha == 2e-3

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            scenario_from_dict({"dayz": 3})

    def test_unknown_population_key_rejected(self):
        with pytest.raises(ValueError, match="unknown population keys"):
            scenario_from_dict({"population": {"n_sweeperz": 3}})

    def test_derived_population_fields_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"population": {"seed": 3}})

    def test_flow_days_bounds_checked(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"days": 3, "flow_days": [5]})

    def test_flow_days_enable_isp(self):
        scenario = scenario_from_dict({"days": 3, "flow_days": [1]})
        assert scenario.with_isp
        assert scenario.flow_days == (1,)

    def test_stream_window(self):
        scenario = scenario_from_dict(
            {"days": 3, "stream_window_days": [0, 1]}
        )
        assert scenario.stream_window == (0.0, 86_400.0)
        assert scenario.with_campus and scenario.with_isp

    def test_stream_window_bounds(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"days": 2, "stream_window_days": [1, 5]})

    def test_conflicting_flags_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict(
                {"days": 3, "flow_days": [1], "with_isp": False}
            )

    def test_start_date_and_timeout(self):
        scenario = scenario_from_dict(
            {"start_date": "2021-06-15", "event_timeout": 900.0}
        )
        assert scenario.clock.start_date.isoformat() == "2021-06-15"
        assert scenario.event_timeout == 900.0

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"days": 0})

    def test_chunk_seconds(self):
        assert scenario_from_dict({}).chunk_seconds is None
        scenario = scenario_from_dict({"chunk_seconds": 7_200})
        assert scenario.chunk_seconds == 7_200.0


class TestLoading:
    def test_load_and_run(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text(json.dumps(MINIMAL))
        scenario = load_scenario(path)
        result = run_scenario(scenario)
        assert len(result.capture) > 0
        assert set(result.detections) == {1, 2, 3}

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_scenario(path)

    def test_cli_accepts_json_scenario(self, tmp_path, capsys):
        from repro import cli

        path = tmp_path / "study.json"
        path.write_text(json.dumps(MINIMAL))
        assert cli.main(["--scenario", str(path), "summary"]) == 0
        out = capsys.readouterr().out
        assert "Scenario: unit" in out
