"""Smoke tests for the example scripts.

The fast examples run end-to-end; the heavy ones (full-scale scenarios,
minutes each) are compile-checked so a refactor can never silently
break them — the benchmarks already execute the same code paths at
scale.
"""

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestFastExamples:
    def test_quickstart_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "Telescope:" in out
        assert "Definition 1" in out
        assert "blocklist" in out

    def test_ipv6_example_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["ipv6_hitlist_scanning.py"])
        runpy.run_path(
            str(EXAMPLES / "ipv6_hitlist_scanning.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "Hitlist:" in out
        assert "aggressive" in out

    def test_line_rate_prefilter_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["line_rate_prefilter.py"])
        runpy.run_path(
            str(EXAMPLES / "line_rate_prefilter.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "sketch candidates" in out
        assert "recall" in out


class TestHeavyExamplesCompile:
    @pytest.mark.parametrize(
        "script",
        [
            "network_impact_study.py",
            "longitudinal_characterization.py",
            "blocklist_generation.py",
        ],
    )
    def test_compiles(self, script, tmp_path):
        py_compile.compile(
            str(EXAMPLES / script),
            cfile=str(tmp_path / (script + "c")),
            doraise=True,
        )

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(("#!", '"""')), script
            assert 'if __name__ == "__main__":' in text, script
