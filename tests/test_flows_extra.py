"""Additional edge-case tests for the impact/flow analyses."""

import numpy as np
import pytest

from repro.core import impact
from repro.flows.netflow import FlowTable


class TestAverageImpact:
    def test_empty(self):
        assert impact.average_impact([]) == {}

    def test_single_cell(self):
        cells = [impact.ImpactCell(2, 0, 10, 100)]
        assert impact.average_impact(cells) == {2: (10.0, pytest.approx(0.1))}


class TestAckedImpactAllDays:
    def test_day_none_aggregates(self):
        flows = FlowTable.from_rows(
            [
                (0, 1, 50, 443, 6, 1_000, 1),
                (0, 2, 50, 443, 6, 3_000, 3),
            ]
        )
        totals = {(0, 1): 10_000, (0, 2): 10_000}
        out = impact.acked_impact(flows, totals, {50}, day=None)
        assert out[0] == (4_000, pytest.approx(0.2))


class TestProtocolBreakdownEdges:
    def test_empty_everything(self):
        from repro.packet import PacketBatch

        out = impact.protocol_breakdown(PacketBatch.empty(), FlowTable(), set())
        for side in ("darknet", "flows"):
            assert all(v == 0.0 for v in out[side].values())


class TestPortConsistencyEdges:
    def test_no_ah(self):
        from repro.packet import PacketBatch

        rows = impact.port_consistency(PacketBatch.empty(), FlowTable(), set())
        assert rows == []


class TestFlowTableEdges:
    def test_empty_table_queries(self):
        table = FlowTable()
        assert table.total_packets() == 0
        assert len(table.unique_sources()) == 0
        assert table.packets_by_port() == {}
        assert table.packets_by_proto() == {}
        assert len(table.for_router_day(0, 0)) == 0

    def test_select_preserves_columns(self):
        table = FlowTable.from_rows([(1, 2, 3, 4, 6, 5, 1)])
        sub = table.select(np.array([True]))
        assert sub.router[0] == 1
        assert sub.day[0] == 2
        assert sub.src[0] == 3
        assert sub.dport[0] == 4
        assert sub.proto[0] == 6
        assert sub.packets[0] == 5
        assert sub.sampled[0] == 1
