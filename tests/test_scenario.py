"""Unit tests for scenario presets."""

import datetime as dt

import pytest

from repro.sim.scenario import (
    SCALED_ALPHA,
    darknet_year_scenario,
    flows_day_scenario,
    flows_week_scenario,
    stream_72h_scenario,
    tiny_scenario,
)


class TestPresets:
    def test_year_scenarios_differ(self):
        s21 = darknet_year_scenario(2021)
        s22 = darknet_year_scenario(2022)
        assert s21.population.year == 2021
        assert s22.population.year == 2022
        # 2022 has more daily aggressive hitters (Figure 3 growth).
        assert s22.population.n_sweepers > s21.population.n_sweepers
        # 2022's exhaustive-port tier is larger and more extreme — the
        # driver of the paper's def-3 threshold jump (6,542 -> 57,410
        # ports/day).
        assert s22.population.n_omniscanners > s21.population.n_omniscanners
        assert s22.population.omni_port_low > s21.population.omni_port_low

    def test_year_calendar(self):
        scenario = darknet_year_scenario(2021)
        assert scenario.clock.start_date == dt.date(2021, 1, 1)
        assert scenario.duration == scenario.days * 86_400.0

    def test_flows_week_covers_paper_dates(self):
        scenario = flows_week_scenario()
        labels = [scenario.clock.label(d) for d in scenario.flow_days]
        assert labels[0] == "2022-01-15 (Sat)"
        assert labels[-1] == "2022-01-21 (Fri)"
        assert len(scenario.flow_days) == 7
        assert scenario.with_isp

    def test_flows_day_is_oct_first(self):
        scenario = flows_day_scenario()
        assert [scenario.clock.label(d) for d in scenario.flow_days] == [
            "2022-10-01 (Sat)"
        ]

    def test_stream_starts_sunday(self):
        scenario = stream_72h_scenario()
        assert scenario.clock.date_of(0).strftime("%a") == "Sun"
        assert scenario.stream_window == (0.0, 3 * 86_400.0)
        assert scenario.with_campus

    def test_population_duration_matches(self):
        for scenario in (
            darknet_year_scenario(2022),
            flows_week_scenario(),
            tiny_scenario(),
        ):
            assert scenario.population.duration == pytest.approx(scenario.duration)

    def test_scaled_alpha_used(self):
        assert darknet_year_scenario(2022).detection.alpha == SCALED_ALPHA

    def test_tiny_is_small(self):
        scenario = tiny_scenario()
        assert scenario.population.n_small_scanners < 1_000
        assert scenario.days <= 5
