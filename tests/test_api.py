"""Public API surface checks."""

import importlib

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.analysis",
            "repro.core",
            "repro.flows",
            "repro.io",
            "repro.ipv6",
            "repro.labeling",
            "repro.net",
            "repro.scanners",
            "repro.sim",
            "repro.telescope",
            "repro.traffic",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__") or module == "repro.core"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_snippet(self):
        # The README/docstring quickstart must stay runnable.
        from repro import run_study, tiny_scenario

        report = run_study(tiny_scenario())
        assert report.dataset_summary()["packets"] > 0
        assert len(report.detections[1]) > 0

    def test_lazy_sim_attributes(self):
        import repro.sim as sim

        assert callable(sim.run_scenario)
        assert sim.ScenarioResult is not None
        with pytest.raises(AttributeError):
            sim.does_not_exist
