"""Tests for lazy, windowed emission (`Scanner.emit_window`,
`PopulationEmitter`, `LazyCaptureSource`).

The load-bearing invariant: windowed emission is an *exact slice* of
one deterministic realization, so concatenating window batches over any
partition reproduces the materialized path bit-identically — addresses,
ports, timestamps and fingerprints.  Everything downstream (streaming
equivalence, shard-parallel equivalence) rests on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Tool
from repro.net.prefix import PrefixSet
from repro.packet import PacketBatch, Protocol
from repro.scanners.background import SpoofedScan
from repro.scanners.base import (
    ScanMode,
    Scanner,
    ScanSession,
    View,
    emit_population,
)
from repro.scanners.lazy import PopulationEmitter
from repro.telescope.chunks import ChunkedCaptureSource, LazyCaptureSource

_COLUMNS = ("ts", "src", "dst", "dport", "proto", "ipid")

_SPAN = 40_000.0


def _view(name="darknet"):
    return View(name, PrefixSet.parse(["10.0.0.0/20"]))


def _assert_batches_identical(a: PacketBatch, b: PacketBatch):
    for column in _COLUMNS:
        assert np.array_equal(getattr(a, column), getattr(b, column)), column


def _session(mode: ScanMode, start: float, duration: float) -> ScanSession:
    if mode is ScanMode.COVERAGE:
        return ScanSession(
            start=start,
            duration=duration,
            ports=np.array([23, 2323]),
            proto=Protocol.TCP_SYN,
            tool=Tool.MASSCAN,
            mode=mode,
            coverage=0.7,
        )
    if mode is ScanMode.RATE:
        return ScanSession(
            start=start,
            duration=duration,
            ports=np.array([23]),
            proto=Protocol.TCP_SYN,
            tool=Tool.OTHER,
            mode=mode,
            # High enough that long sessions split into many RNG spans.
            rate_pps=3e6,
        )
    return ScanSession(
        start=start,
        duration=duration,
        ports=np.arange(1, 40, dtype=np.uint16),
        proto=Protocol.TCP_SYN,
        tool=Tool.ZMAP,
        mode=mode,
        n_targets=2_000_000,
    )


def _scanner(mode: ScanMode, start: float, duration: float) -> Scanner:
    return Scanner(
        src=0x0B000001,
        behavior="test",
        sessions=[_session(mode, start, duration)],
        seed=99,
    )


# ----------------------------------------------------------------------
# Tentpole property: for every ScanMode and ANY partition of the time
# axis, concatenating emit_window over the parts equals the full
# emission exactly — every column, every packet, in order.
# ----------------------------------------------------------------------

partitions = st.lists(
    st.floats(min_value=0.0, max_value=_SPAN, allow_nan=False),
    min_size=0,
    max_size=8,
)


@given(
    st.sampled_from(list(ScanMode)),
    partitions,
    st.floats(min_value=100.0, max_value=_SPAN * 0.9, allow_nan=False),
    st.floats(min_value=1_000.0, max_value=_SPAN, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_emit_window_partition_equals_full_emit(
    mode, cuts, start, duration
):
    scanner = _scanner(mode, start, duration)
    view = _view()
    full = scanner.emit(view).sorted_by_time()

    # The last edge must cover every session end (start + duration can
    # reach 1.9 * _SPAN).
    edges = sorted({0.0, _SPAN * 2.0, *cuts})
    parts = [
        scanner.emit_window(view, lo, hi)
        for lo, hi in zip(edges[:-1], edges[1:])
    ]
    _assert_batches_identical(PacketBatch.concat(parts), full)


def test_emit_window_is_deterministic():
    scanner = _scanner(ScanMode.RATE, 0.0, _SPAN)
    view = _view()
    a = scanner.emit_window(view, 5_000.0, 15_000.0)
    b = scanner.emit_window(view, 5_000.0, 15_000.0)
    assert len(a) > 0
    _assert_batches_identical(a, b)


def test_windowed_emit_slices_are_exact():
    """emit(view, window) returns the full realization's packets with
    ts inside the window — not a fresh realization."""
    scanner = _scanner(ScanMode.COVERAGE, 1_000.0, 30_000.0)
    view = _view()
    full = scanner.emit(view).sorted_by_time()
    lo, hi = 8_000.0, 17_500.0
    window = scanner.emit(view, window=(lo, hi)).sorted_by_time()
    mask = (full.ts >= lo) & (full.ts < hi)
    _assert_batches_identical(window, full.select(mask))


def test_rate_sessions_split_into_bounded_spans():
    """A long, fast RATE session generates on a multi-span grid, so a
    window never materializes more than ~one span of it."""
    scanner = _scanner(ScanMode.RATE, 0.0, _SPAN)
    session = scanner.sessions[0]
    _, _, _, spans = scanner._session_plan(session, _view().ranges())
    assert len(spans) > 1
    assert spans[0][0] == session.start
    assert spans[-1][1] == session.end
    # Spans tile the session exactly.
    for (_, prev_end), (next_start, _) in zip(spans[:-1], spans[1:]):
        assert prev_end == next_start


# ----------------------------------------------------------------------
# PopulationEmitter / LazyCaptureSource: the streamed chunk sequence is
# bit-identical to chunking the materialized capture.
# ----------------------------------------------------------------------


def _population():
    scanners = [
        _scanner(ScanMode.COVERAGE, 2_000.0, 9_000.0),
        Scanner(
            src=0x0C000002,
            behavior="test-rate",
            sessions=[
                _session(ScanMode.RATE, 0.0, _SPAN),
                _session(ScanMode.COVERAGE, 30_000.0, 5_000.0),
            ],
            seed=7,
        ),
        SpoofedScan(
            start=4_000.0,
            duration=6_000.0,
            coverage=0.5,
            dport=445,
            spoof_ranges=np.array([[0x10000000, 0x20000000]], dtype=np.int64),
            seed=31,
        ),
        _scanner(ScanMode.VERTICAL, 12_000.0, 20_000.0),
    ]
    return scanners


@pytest.mark.parametrize("chunk_seconds", [1_800.0, 3_600.0, 7_200.0])
def test_lazy_source_matches_from_capture(chunk_seconds):
    scanners = _population()
    view = _view()
    window = (0.0, _SPAN * 1.2)
    materialized = emit_population(scanners, view, window)
    ref = list(
        ChunkedCaptureSource.from_capture(materialized, chunk_seconds)
    )
    lazy = list(
        LazyCaptureSource.from_population(
            scanners, view, chunk_seconds, window=window
        )
    )
    assert len(ref) == len(lazy) > 1
    for r, l in zip(ref, lazy):
        assert (r.index, r.start, r.end) == (l.index, l.start, l.end)
        _assert_batches_identical(r.packets, l.packets)


def test_emitter_respects_overall_window():
    scanners = _population()
    view = _view()
    window = (6_000.0, 20_000.0)
    total = PacketBatch.concat(
        [batch for _, _, batch in PopulationEmitter(scanners, view, 3_600.0, window=window)]
    )
    assert len(total) > 0
    assert float(total.ts.min()) >= window[0]
    assert float(total.ts.max()) < window[1]
    expected = emit_population(scanners, view, window)
    _assert_batches_identical(total, expected)


def test_emitter_empty_population():
    emitter = PopulationEmitter([], _view(), 3_600.0)
    assert list(emitter) == []
    assert emitter.span() is None
    assert emitter.spans_derived == 0
    assert emitter.spans_emitted == 0


def test_span_counters_split_derived_from_emitted():
    # The population mixes session-backed cursors (batched derivation)
    # with a fallback cursor (SpoofedScan) — both must count.
    scanners = _population()
    source = LazyCaptureSource.from_population(
        scanners, _view(), 3_600.0, window=(0.0, _SPAN * 1.2)
    )
    assert source.spans_derived == 0  # nothing admitted before draining
    total = sum(len(chunk) for chunk in source)
    assert total > 0
    assert source.spans_derived >= source.spans_emitted > 0
    # One derivation unit per keyed span plus one per fallback emit:
    # at least a span per session of each session-backed scanner.
    sessions = sum(len(getattr(s, "sessions", []) or []) for s in scanners)
    assert source.spans_derived >= sessions


def test_emitter_rejects_bad_chunk_seconds():
    with pytest.raises(ValueError, match="chunk_seconds"):
        PopulationEmitter(_population(), _view(), 0.0)


# ----------------------------------------------------------------------
# ChunkedCaptureSource single-pass contract.
# ----------------------------------------------------------------------


def test_chunked_source_is_single_pass():
    scanners = _population()
    view = _view()
    capture = emit_population(scanners, view, (0.0, _SPAN))
    source = ChunkedCaptureSource.from_capture(capture, 3_600.0)
    assert len(list(source)) > 0
    with pytest.raises(RuntimeError, match="single-pass"):
        iter(source)


def test_lazy_source_is_single_pass():
    source = LazyCaptureSource.from_population(
        _population(), _view(), 3_600.0, window=(0.0, _SPAN)
    )
    assert len(list(source)) > 0
    with pytest.raises(RuntimeError, match="single-pass"):
        iter(source)
