"""Unit tests for the honeypot (GreyNoise-like) database."""

import numpy as np

from repro.fingerprint import Tool
from repro.labeling.greynoise import (
    Classification,
    GreyNoiseDB,
    GreyNoiseRecord,
    build_greynoise,
)
from repro.packet import Protocol
from repro.scanners.base import ScanMode, ScanSession, Scanner


def make_scanner(src, behavior, port=23, org=None, tool=Tool.OTHER):
    session = ScanSession(
        start=0.0,
        duration=100.0,
        ports=np.array([port], dtype=np.uint16),
        proto=Protocol.TCP_SYN,
        tool=tool,
        mode=ScanMode.RATE,
        rate_pps=100.0,
    )
    return Scanner(src=src, behavior=behavior, sessions=[session], org=org, seed=src)


class TestDB:
    def test_contains_get_len(self):
        db = GreyNoiseDB()
        db.records[5] = GreyNoiseRecord(5, Classification.MALICIOUS, ("Mirai",))
        assert 5 in db
        assert len(db) == 1
        assert db.get(5).tags == ("Mirai",)
        assert db.get(6) is None

    def test_coverage(self):
        db = GreyNoiseDB()
        db.records[1] = GreyNoiseRecord(1, Classification.UNKNOWN, ())
        assert db.coverage([1, 2]) == 0.5
        assert db.coverage([]) == 0.0

    def test_classification_counts(self):
        db = GreyNoiseDB()
        db.records[1] = GreyNoiseRecord(1, Classification.MALICIOUS, ())
        db.records[2] = GreyNoiseRecord(2, Classification.BENIGN, ())
        counts = db.classification_counts([1, 2, 3])
        assert counts["malicious"] == 1
        assert counts["benign"] == 1
        assert counts["not-seen"] == 1

    def test_tag_counts(self):
        db = GreyNoiseDB()
        db.records[1] = GreyNoiseRecord(1, Classification.MALICIOUS, ("Mirai", "ZMap Client"))
        db.records[2] = GreyNoiseRecord(2, Classification.MALICIOUS, ("Mirai",))
        counts = db.tag_counts([1, 2])
        assert counts["Mirai"] == 2
        assert counts["ZMap Client"] == 1


class TestBuild:
    def test_mirai_tagged(self):
        rng = np.random.default_rng(0)
        scanners = [make_scanner(i, "mirai") for i in range(50)]
        db = build_greynoise(scanners, rng)
        tagged = [db.get(i) for i in range(50) if i in db]
        assert tagged
        assert all("Mirai" in r.tags for r in tagged)
        malicious = sum(r.classification is Classification.MALICIOUS for r in tagged)
        assert malicious > len(tagged) * 0.7

    def test_research_benign(self):
        rng = np.random.default_rng(0)
        scanners = [
            make_scanner(i, "research", port=443, org="netcensus", tool=Tool.ZMAP)
            for i in range(30)
        ]
        db = build_greynoise(scanners, rng)
        for i in range(30):
            record = db.get(i)
            if record is not None:
                assert record.classification is Classification.BENIGN
                assert "ZMap Client" in record.tags

    def test_internet_wide_scanners_nearly_always_seen(self):
        rng = np.random.default_rng(0)
        scanners = [make_scanner(i, "masscan-sweep") for i in range(400)]
        db = build_greynoise(scanners, rng)
        assert db.coverage(range(400)) > 0.97

    def test_misconfig_rarely_seen(self):
        rng = np.random.default_rng(0)
        scanners = [make_scanner(i, "misconfig") for i in range(300)]
        db = build_greynoise(scanners, rng)
        assert db.coverage(range(300)) < 0.1

    def test_window_filters_inactive(self):
        rng = np.random.default_rng(0)
        scanners = [make_scanner(1, "mirai")]  # active [0, 100)
        db = build_greynoise(scanners, rng, window=(200.0, 300.0))
        assert 1 not in db

    def test_port_tag_applied(self):
        rng = np.random.default_rng(0)
        scanners = [make_scanner(i, "masscan-sweep", port=3389) for i in range(40)]
        db = build_greynoise(scanners, rng)
        tags = {t for i in range(40) if i in db for t in db.get(i).tags}
        assert "Looks Like RDP Worm" in tags

    def test_sweeper_mix_mostly_unknown(self):
        rng = np.random.default_rng(0)
        scanners = [make_scanner(i, "masscan-sweep") for i in range(300)]
        db = build_greynoise(scanners, rng)
        counts = db.classification_counts(range(300))
        # Figure 6: the majority of non-acked AH are of unknown intent,
        # with a substantial malicious minority.
        assert counts["unknown"] > counts["malicious"] > 0
