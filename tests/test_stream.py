"""Unit tests for the packet-stream monitors."""

import numpy as np
import pytest

from repro.flows.stream import StreamSeries


def make_series(total, ah, slash24s=10, network="merit"):
    return StreamSeries(
        network=network,
        start=0.0,
        total_pps=np.asarray(total, dtype=np.int64),
        ah_pps=np.asarray(ah, dtype=np.int64),
        slash24s=slash24s,
    )


class TestStreamSeries:
    def test_length_checked(self):
        with pytest.raises(ValueError):
            make_series([1, 2, 3], [1, 2])

    def test_instantaneous_fraction(self):
        series = make_series([100, 200, 0], [10, 50, 0])
        frac = series.instantaneous_fraction()
        assert frac.tolist() == [0.1, 0.25, 0.0]

    def test_cumulative_fraction(self):
        series = make_series([100, 100], [10, 30])
        cum = series.cumulative_fraction()
        assert cum[0] == pytest.approx(0.1)
        assert cum[1] == pytest.approx(0.2)

    def test_cumulative_declines_when_ah_stops(self):
        total = np.full(100, 100)
        ah = np.concatenate([np.full(50, 50), np.zeros(50)])
        series = make_series(total, ah)
        cum = series.cumulative_fraction()
        assert cum[-1] < cum[49]

    def test_normalized_rate(self):
        series = make_series([100, 100], [20, 40], slash24s=4)
        assert series.normalized_ah_rate().tolist() == [5.0, 10.0]

    def test_high_load_mask(self):
        series = make_series([100, 500, 900], [0, 0, 0])
        assert series.high_load_mask(500).tolist() == [False, True, True]

    def test_summary_fields(self):
        series = make_series([100, 100], [10, 30])
        summary = series.summary()
        assert summary["total_packets"] == 200
        assert summary["ah_packets"] == 40
        assert summary["overall_fraction"] == pytest.approx(0.2)
        assert summary["max_instantaneous_fraction"] == pytest.approx(0.3)
        assert summary["peak_total_pps"] == 100

    def test_empty_series(self):
        series = make_series([], [])
        assert len(series) == 0
        assert series.peak_total_pps() == 0


class TestMonitorsOnTinyScenario:
    def test_both_stations_record(self, tiny_result):
        streams = tiny_result.record_streams()
        assert set(streams) == {"merit", "campus"}
        for series in streams.values():
            assert len(series) == 86_400
            assert series.total_pps.sum() > 0

    def test_total_includes_ah(self, tiny_result):
        for series in tiny_result.record_streams().values():
            assert np.all(series.total_pps >= series.ah_pps)

    def test_ah_traffic_present_at_isp(self, tiny_result):
        merit = tiny_result.record_streams()["merit"]
        assert merit.ah_pps.sum() > 0

    def test_campus_normalized_rate_exceeds_isp(self, tiny_result):
        # The Figure 2 result: per-/24, the campus is hit at least as
        # hard as the ISP station (which only mirrors one router and
        # normalizes over the whole ISP's /24s).
        streams = tiny_result.record_streams()
        merit = streams["merit"].normalized_ah_rate().mean()
        campus = streams["campus"].normalized_ah_rate().mean()
        assert campus > merit

    def test_caching_depresses_absolute_fraction_at_campus(self, tiny_result):
        # The ISP's cache-shrunk denominator makes its absolute AH
        # fraction larger than the campus one (Figure 1 top row).
        streams = tiny_result.record_streams()
        merit = streams["merit"].summary()["overall_fraction"]
        campus = streams["campus"].summary()["overall_fraction"]
        assert merit > campus
