"""Unit tests for legitimate-traffic and cache models."""

import datetime as dt

import numpy as np
import pytest

from repro.sim.clock import SimClock
from repro.traffic.cache import ContentCacheModel
from repro.traffic.legit import DiurnalTrafficModel


class TestCache:
    def test_border_factor(self):
        assert ContentCacheModel(0.0).border_factor() == 1.0
        assert ContentCacheModel(0.45).border_factor() == pytest.approx(0.55)

    def test_amplification(self):
        assert ContentCacheModel(0.5).amplification() == pytest.approx(2.0)

    def test_bounds(self):
        with pytest.raises(ValueError):
            ContentCacheModel(1.0)
        with pytest.raises(ValueError):
            ContentCacheModel(-0.1)


class TestDiurnalModel:
    @pytest.fixture()
    def clock(self):
        return SimClock(start_date=dt.date(2022, 1, 14))  # Friday

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrafficModel(base_pps=0)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(weekend_factor=0.0)

    def test_weekend_dip(self, clock, rng):
        model = DiurnalTrafficModel(base_pps=1_000.0, noise=0.0)
        friday = model.daily_total(0, clock, rng)
        saturday = model.daily_total(1, clock, rng)
        assert saturday < friday
        assert saturday / friday == pytest.approx(model.weekend_factor, rel=0.05)

    def test_diurnal_peak_near_peak_hour(self, clock):
        model = DiurnalTrafficModel(base_pps=1_000.0, peak_hour=20.0)
        hours = np.arange(24) * 3_600.0
        rates = model.mean_rate_at(hours, clock)
        assert np.argmax(rates) == 20

    def test_cache_shrinks_border(self, clock):
        demand = DiurnalTrafficModel(base_pps=1_000.0, floor_pps=0.0)
        cached = DiurnalTrafficModel(
            base_pps=1_000.0,
            floor_pps=0.0,
            cache=ContentCacheModel(0.4),
        )
        ts = np.array([3_600.0])
        assert cached.mean_rate_at(ts, clock)[0] == pytest.approx(
            0.6 * demand.mean_rate_at(ts, clock)[0]
        )

    def test_floor_added(self, clock):
        model = DiurnalTrafficModel(base_pps=1_000.0, floor_pps=77.0)
        bare = DiurnalTrafficModel(base_pps=1_000.0, floor_pps=0.0)
        ts = np.array([0.0])
        diff = model.mean_rate_at(ts, clock)[0] - bare.mean_rate_at(ts, clock)[0]
        assert diff == pytest.approx(77.0)

    def test_daily_total_scale(self, clock, rng):
        model = DiurnalTrafficModel(base_pps=1_000.0, noise=0.0, floor_pps=0.0)
        total = model.daily_total(0, clock, rng)
        # Mean rate is base_pps over a day (cosine integrates to zero).
        assert abs(total - 1_000 * 86_400) < 0.02 * 1_000 * 86_400

    def test_per_second_counts_length(self, clock, rng):
        model = DiurnalTrafficModel(base_pps=100.0)
        counts = model.per_second_counts((0.0, 600.0), clock, rng)
        assert len(counts) == 600
        assert counts.dtype == np.int64
        assert abs(counts.mean() - model.mean_rate_at(np.array([300.0]), clock)[0]) < 30
