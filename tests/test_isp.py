"""Unit tests for the ISP network models."""

import numpy as np
import pytest

from repro.flows.isp import build_campus_like, build_merit_like
from repro.flows.netflow import NetflowExporter
from repro.net.internet import InternetConfig, build_internet
from repro.scanners.base import Scanner
from repro.sim.clock import SimClock
from tests.test_scanner_base import coverage_session


@pytest.fixture()
def world():
    internet = build_internet(InternetConfig(seed=7, core_as_count=30, tail_as_count=20))
    dark = internet.allocator.allocate(20)
    merit, internet = build_merit_like(internet, dark, lit_prefix_length=18)
    campus, internet = build_campus_like(internet, prefix_length=20)
    merit.internet = internet
    campus.internet = internet
    return internet, dark, merit, campus


class TestBuilders:
    def test_merit_registered_in_plan(self, world):
        internet, dark, merit, _ = world
        system = internet.registry.by_asn(237)
        assert system.org == "telescope-operator-isp"
        assert any(p.base == dark.base for p in system.prefixes)

    def test_transit_view_covers_dark_space(self, world):
        _, dark, merit, _ = world
        probe = np.array([dark.base + 5], dtype=np.uint32)
        assert merit.transit_view.prefixes.contains_array(probe).all()

    def test_campus_single_router(self, world):
        _, _, _, campus = world
        assert campus.router_count == 1
        assert campus.lit_slash24s == 16  # /20 = 16 x /24

    def test_merit_three_routers(self, world):
        _, _, merit, _ = world
        assert merit.router_count == 3
        assert merit.lit_slash24s == 64 + 16  # lit /18 + dark /20

    def test_traffic_model_count_checked(self, world):
        from repro.flows.isp import ISPNetwork
        from repro.flows.router import RoutingPolicy

        _, _, merit, _ = world
        with pytest.raises(ValueError):
            ISPNetwork(
                name="x",
                transit_view=merit.transit_view,
                lit_slash24s=1,
                policy=RoutingPolicy.default_three_router(),
                traffic_models=merit.traffic_models[:2],
                internet=merit.internet,
            )


class TestFlowCollection:
    def _scanner(self, src, coverage=0.9):
        return Scanner(
            src=src, behavior="t",
            sessions=[coverage_session(coverage, duration=86_400.0)], seed=src,
        )

    def test_collect_and_totals(self, world, rng):
        internet, _, merit, _ = world
        # Source from a known AS in the plan.
        src = int(internet.registry.systems[0].prefixes[0].base + 10)
        clock = SimClock()
        flows, true_totals = merit.collect_scanner_flows(
            [self._scanner(src)], (0.0, 86_400.0), clock, rng,
            exporter=NetflowExporter(sampling_rate=1),
        )
        # The scanner's traffic fans out over the ingress routers
        # according to its deterministic router mix.
        assert 1 <= len(flows) <= merit.router_count
        mix = merit.router_mix(src)
        total = flows.total_packets()
        for router in range(merit.router_count):
            observed = int(flows.packets[flows.router == router].sum())
            assert abs(observed - mix[router] * total) < 0.1 * total + 1
            if observed:
                assert true_totals[(router, 0)] == observed
        assert sum(true_totals.values()) == total

    def test_router_mix_properties(self, world):
        internet, _, merit, _ = world
        src = int(internet.registry.systems[0].prefixes[0].base + 10)
        mix = merit.router_mix(src)
        assert mix.sum() == pytest.approx(1.0)
        assert len(mix) == merit.router_count
        # Shares are multiples of 1/dst_blocks.
        assert all(
            abs(share * merit.dst_blocks - round(share * merit.dst_blocks)) < 1e-9
            for share in mix
        )

    def test_router_day_totals_include_scanners(self, world):
        _, _, merit, _ = world
        clock = SimClock()
        scan_totals = {(0, 0): 1_000_000}
        # Identical RNG streams isolate the scanner contribution.
        totals = merit.router_day_totals(
            [0], scan_totals, clock, np.random.default_rng(1)
        )
        bare = merit.router_day_totals([0], {}, clock, np.random.default_rng(1))
        assert totals[(0, 0)] - bare[(0, 0)] == 1_000_000
        assert set(totals) == {(0, 0), (1, 0), (2, 0)}

    def test_campus_assigns_everything_to_border(self, world, rng):
        internet, _, _, campus = world
        srcs = internet.registry.systems[1].prefixes[0]
        for offset in (0, 7, 99):
            assert campus.assign_router(srcs.base + offset) == 0

    def test_flow_day_alignment(self, world, rng):
        internet, _, merit, _ = world
        src = int(internet.registry.systems[0].prefixes[0].base + 10)
        scanner = Scanner(
            src=src, behavior="t",
            sessions=[coverage_session(0.9, start=86_400.0, duration=86_400.0)],
            seed=1,
        )
        clock = SimClock()
        flows, _ = merit.collect_scanner_flows(
            [scanner], (0.0, 3 * 86_400.0), clock, rng,
            exporter=NetflowExporter(sampling_rate=1),
        )
        assert set(flows.day.tolist()) == {1}
