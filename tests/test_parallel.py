"""Tests for the shard-parallel detection layer (repro.parallel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.core.telemetry import PipelineTelemetry
from repro.io.packetlog import save_packets_chunked
from repro.packet import PacketBatch, Protocol
from repro.parallel import (
    merge_detectors,
    parallel_detect,
    parallel_detect_directory,
    shard_batch,
    shard_of,
    shard_scanners,
)
from repro.sim.runner import run_scenario
from repro.sim.scenario import tiny_scenario
from tests.test_events import _packets
from tests.test_streaming import (
    _assert_detections_identical,
    _assert_tables_identical,
)

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)


def _random_capture(seed, n=20_000, duration=400_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 200, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _reference(batch, timeout=600.0):
    events = build_events(batch, timeout)
    return events, detect_all(events, _DARK_SIZE, _CONFIG)


class TestSharding:
    def test_shard_of_deterministic_and_in_range(self):
        src = np.arange(10_000, dtype=np.uint32)
        for n in (1, 2, 3, 8):
            shard = shard_of(src, n)
            assert shard.min() >= 0 and shard.max() < n
            assert np.array_equal(shard, shard_of(src, n))

    def test_shard_of_spreads_sources(self):
        # Adjacent addresses (a /24's worth) must not pile into one shard.
        src = np.arange(256, dtype=np.uint32)
        counts = np.bincount(shard_of(src, 4), minlength=4)
        assert counts.min() > 0

    def test_shard_batch_partitions(self):
        batch = _random_capture(1, n=5_000)
        shards = shard_batch(batch, 4)
        assert sum(len(s) for s in shards) == len(batch)
        seen = [set(np.unique(s.src).tolist()) for s in shards if len(s)]
        for i, a in enumerate(seen):
            for b in seen[i + 1:]:
                assert not (a & b)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of(np.arange(4, dtype=np.uint32), 0)

    def test_shard_scanners_legacy_layout_stable(self):
        # Backward compat for schedule="static": the hash-grouped
        # scanner partition must keep matching shard_of on each source,
        # preserving population order within a shard.
        class _Fake:
            def __init__(self, src):
                self.src = src

        scanners = [_Fake(src) for src in range(1, 300, 7)]
        shards = shard_scanners(scanners, 4)
        assert sum(len(s) for s in shards) == len(scanners)
        sources = np.array([s.src for s in scanners], dtype=np.uint32)
        expected = shard_of(sources, 4)
        for idx, shard in enumerate(shards):
            srcs = [s.src for s in shard]
            assert srcs == [
                s.src for s, e in zip(scanners, expected) if e == idx
            ]

    def test_shard_scanners_single_shard(self):
        class _Fake:
            def __init__(self, src):
                self.src = src

        scanners = [_Fake(1), _Fake(2)]
        assert shard_scanners(scanners, 1) == [scanners]
        with pytest.raises(ValueError):
            shard_scanners(scanners, 0)

    def test_merge_detectors_empty(self):
        with pytest.raises(ValueError):
            merge_detectors([])


class TestParallelDetect:
    def test_matches_serial_with_processes(self):
        batch = _random_capture(21)
        ref_events, ref_detections = _reference(batch)
        chunks = (c for _, _, c in batch.iter_time_chunks(3_600.0))
        result = parallel_detect(
            chunks, 600.0, _DARK_SIZE, _CONFIG, workers=2
        )
        _assert_tables_identical(result.events, ref_events)
        _assert_detections_identical(result.detections, ref_detections)
        assert result.workers == 2

    def test_worker_reports_cover_capture(self):
        batch = _random_capture(22, n=8_000)
        chunks = (c for _, _, c in batch.iter_time_chunks(3_600.0))
        result = parallel_detect(
            chunks, 600.0, _DARK_SIZE, _CONFIG, workers=3, use_processes=False
        )
        assert sum(r.packets for r in result.worker_reports) == len(batch)
        assert all(r.seconds >= 0 for r in result.worker_reports)
        assert [r.shard for r in result.worker_reports] == [0, 1, 2]

    def test_telemetry_aggregation(self):
        batch = _random_capture(23, n=8_000)
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        chunks = (c for _, _, c in batch.iter_time_chunks(3_600.0))
        result = parallel_detect(
            chunks,
            600.0,
            _DARK_SIZE,
            _CONFIG,
            workers=2,
            use_processes=False,
            telemetry=telemetry,
        )
        assert telemetry.workers == 2
        assert telemetry.total_packets == len(batch)
        assert telemetry.total_events == len(result.events)
        assert telemetry.peak_open_flows == sum(
            w.peak_open_flows for w in telemetry.worker_stats
        )
        assert telemetry.final_open_flows == 0
        assert "merge" in telemetry.stages
        assert any(
            label == "workers" for label, _ in telemetry.summary_rows()
        )
        assert len(telemetry.as_dict()["workers"]) == 2

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_detect([], 600.0, _DARK_SIZE, workers=0)


class TestParallelDirectory:
    def test_matches_serial(self, tmp_path):
        batch = _random_capture(31, n=10_000)
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        ref_events, ref_detections = _reference(batch)
        result = parallel_detect_directory(
            tmp_path / "cap", 600.0, _DARK_SIZE, _CONFIG, workers=2
        )
        _assert_tables_identical(result.events, ref_events)
        _assert_detections_identical(result.detections, ref_detections)

    def test_missing_directory_raises_upfront(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="chunk directory"):
            parallel_detect_directory(
                tmp_path / "nope", 600.0, _DARK_SIZE, workers=2
            )

    def test_gap_in_sequence_raises_upfront(self, tmp_path):
        batch = _random_capture(32, n=6_000)
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        victims = sorted((tmp_path / "cap").glob("chunk-*.npz"))
        assert len(victims) > 2
        victims[1].unlink()
        with pytest.raises(ValueError, match="gaps"):
            parallel_detect_directory(
                tmp_path / "cap", 600.0, _DARK_SIZE, workers=2
            )


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def batch_result(self):
        return run_scenario(tiny_scenario())

    def test_workers_match_batch(self, batch_result):
        parallel = run_scenario(
            tiny_scenario(), mode="streaming", workers=2
        )
        _assert_tables_identical(parallel.events, batch_result.events)
        _assert_detections_identical(
            parallel.detections, batch_result.detections
        )
        assert parallel.telemetry is not None
        assert parallel.telemetry.workers == 2

    def test_scenario_workers_field(self, batch_result):
        import dataclasses

        scenario = dataclasses.replace(tiny_scenario(), workers=2)
        parallel = run_scenario(scenario, mode="streaming")
        _assert_detections_identical(
            parallel.detections, batch_result.detections
        )
        assert parallel.telemetry.workers == 2

    @pytest.mark.parametrize("schedule", ["static", "packed", "stealing"])
    def test_schedule_modes_match_batch(self, batch_result, schedule):
        # The full streaming pipeline — lazy generation, grouped
        # scheduling, detection, flow synthesis — under every mode:
        # identical results, telemetry arity pinned to the worker count.
        parallel = run_scenario(
            tiny_scenario(), mode="streaming", workers=2, schedule=schedule
        )
        _assert_tables_identical(parallel.events, batch_result.events)
        _assert_detections_identical(
            parallel.detections, batch_result.detections
        )
        assert parallel.schedule == schedule
        assert len(parallel.telemetry.worker_stats) == 2
        if schedule == "stealing":
            assert any(
                w.tasks > 1 for w in parallel.telemetry.worker_stats
            )

    def test_span_counters_threaded_to_telemetry(self, batch_result):
        # The lazy path reports spans_derived (pre-dedup derivation
        # units) separately from spans_emitted, all the way into the
        # per-worker telemetry rows.
        parallel = run_scenario(
            tiny_scenario(), mode="streaming", workers=2
        )
        stats = parallel.telemetry.worker_stats
        assert len(stats) == 2
        for worker in stats:
            assert worker.spans_derived >= worker.spans_emitted >= 0
            as_dict = worker.as_dict()
            assert as_dict["spans_derived"] == worker.spans_derived
            assert as_dict["spans_emitted"] == worker.spans_emitted
        assert sum(w.spans_emitted for w in stats) > 0
        rows = dict(parallel.telemetry.summary_rows())
        assert any("derived" in value for value in rows.values())

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            run_scenario(
                tiny_scenario(), mode="streaming", workers=2,
                schedule="adaptive",
            )

    def test_workers_allowed_in_batch_mode(self, batch_result):
        # Batch mode now accepts workers: detection runs serially, but
        # the ISP flow synthesis shards across the pool on demand.
        result = run_scenario(tiny_scenario(), mode="batch", workers=2)
        _assert_detections_identical(result.detections, batch_result.detections)
        assert result.workers == 2

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            run_scenario(tiny_scenario(), mode="streaming", workers=0)
        with pytest.raises(ValueError, match=">= 1"):
            run_scenario(tiny_scenario(), mode="batch", workers=0)


# ----------------------------------------------------------------------
# Property: for any shard count in 1..8 and any scheduling mode,
# sharded streaming detection emits AH sets (and thresholds, and the
# event table) identical to serial detect_all, for all three
# definitions.  In-process execution — the shard/merge code path is
# exactly the process-pool one.
# ----------------------------------------------------------------------

packet_rows = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5_000, allow_nan=False),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=20),
        st.sampled_from([22, 23, 80]),
    ),
    min_size=1,
    max_size=120,
)


@given(
    packet_rows,
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["static", "packed", "stealing"]),
    st.floats(min_value=10.0, max_value=2_000.0),
    st.floats(min_value=50.0, max_value=6_000.0),
)
@settings(max_examples=60, deadline=None)
def test_sharded_equals_serial(rows, workers, schedule, timeout, chunk_seconds):
    batch = _packets([(ts, s, d, p, TCP) for ts, s, d, p in rows])
    ref_events = build_events(batch, timeout)
    ref_detections = detect_all(ref_events, _DARK_SIZE, _CONFIG)
    chunks = (c for _, _, c in batch.iter_time_chunks(chunk_seconds))
    result = parallel_detect(
        chunks,
        timeout,
        _DARK_SIZE,
        _CONFIG,
        workers=workers,
        schedule=schedule,
        use_processes=False,
    )
    _assert_tables_identical(
        result.events, ref_events.sorted_canonical()
    )
    _assert_detections_identical(result.detections, ref_detections)
