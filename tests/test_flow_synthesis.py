"""Columnar flow synthesis: bit-identity and sharding properties.

The contracts this file pins, all exact (no tolerances):

* The columnar ``ISPNetwork.collect_scanner_flows`` is **bit-identical**
  to the scalar loop reference (``collect_scanner_flows_loop``) — same
  derived streams, same rows, same sampled table, same true totals.
* Shard-parallel synthesis equals serial for **any worker count 1..8**
  (hypothesis-tested in-process; one real process-pool smoke test).
* The vectorized export binomial equals a scalar ``sample_count`` loop
  draw for draw, for ``keep_zero`` both on and off.
* ``Scanner.count_columns`` equals ``count_rows`` row for row from the
  same stream, across all scan modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint import Tool
from repro.flows.isp import build_merit_like
from repro.flows.netflow import FlowColumns, NetflowExporter
from repro.flows.synthesis import (
    collect_scanner_flows_loop,
    flow_base_seed,
    synthesize_flow_columns,
)
from repro.core.telemetry import PipelineTelemetry
from repro.net.internet import InternetConfig, build_internet
from repro.net.prefix import PrefixSet
from repro.packet import Protocol
from repro.parallel import parallel_flow_columns
from repro.scanners.base import ScanMode, Scanner, ScanSession, View
from repro.sim.clock import SimClock

DAY = 86_400.0

_FLOW_COLS = ("router", "day", "src", "dport", "proto", "true")
_TABLE_COLS = ("router", "day", "src", "dport", "proto", "packets", "sampled")


def _assert_columns_identical(a: FlowColumns, b: FlowColumns):
    for column in _FLOW_COLS:
        assert np.array_equal(getattr(a, column), getattr(b, column)), column


def _assert_tables_identical(a, b):
    for column in _TABLE_COLS:
        assert np.array_equal(getattr(a, column), getattr(b, column)), column


def _session(mode: ScanMode, start: float, duration: float) -> ScanSession:
    if mode is ScanMode.COVERAGE:
        return ScanSession(
            start=start,
            duration=duration,
            ports=np.array([23, 2323]),
            proto=Protocol.TCP_SYN,
            tool=Tool.MASSCAN,
            mode=mode,
            coverage=0.7,
        )
    if mode is ScanMode.RATE:
        return ScanSession(
            start=start,
            duration=duration,
            ports=np.array([53, 123, 161]),
            proto=Protocol.UDP,
            tool=Tool.OTHER,
            mode=mode,
            rate_pps=50_000.0,
            port_weights=np.array([0.6, 0.3, 0.1]),
        )
    return ScanSession(
        start=start,
        duration=duration,
        ports=np.arange(1, 12, dtype=np.uint16),
        proto=Protocol.TCP_SYN,
        tool=Tool.ZMAP,
        mode=mode,
        n_targets=2_000_000,
    )


@pytest.fixture(scope="module")
def merit_world():
    internet = build_internet(
        InternetConfig(seed=7, core_as_count=30, tail_as_count=20)
    )
    dark = internet.allocator.allocate(20)
    merit, internet = build_merit_like(internet, dark, lit_prefix_length=18)
    merit.internet = internet
    return internet, merit


@pytest.fixture(scope="module")
def flow_population(merit_world):
    """A mode-diverse population with sources across the address plan."""
    internet, _ = merit_world
    modes = list(ScanMode)
    scanners = []
    for i, system in enumerate(internet.registry.systems[:24]):
        src = int(system.prefixes[0].base + 10 + i)
        scanners.append(
            Scanner(
                src=src,
                behavior="test",
                sessions=[
                    _session(modes[i % 3], start=i * 3_600.0, duration=1.5 * DAY),
                ],
                seed=src,
            )
        )
    return scanners


class TestColumnarEqualsLoop:
    """Golden contract: vectorized path == scalar loop, bit for bit."""

    WINDOW = (0.0, 2 * DAY)

    def test_table_and_totals_identical(self, merit_world, flow_population):
        _, merit = merit_world
        clock = SimClock()
        table, totals = merit.collect_scanner_flows(
            flow_population, self.WINDOW, clock, np.random.default_rng(5)
        )
        loop_table, loop_totals = collect_scanner_flows_loop(
            merit, flow_population, self.WINDOW, clock, np.random.default_rng(5)
        )
        assert len(table) > 0
        _assert_tables_identical(table, loop_table)
        assert totals == loop_totals

    def test_keep_zero_identical(self, merit_world, flow_population):
        _, merit = merit_world
        clock = SimClock()
        exporter = NetflowExporter(sampling_rate=1_000, keep_zero=True)
        table, _ = merit.collect_scanner_flows(
            flow_population[:8], self.WINDOW, clock,
            np.random.default_rng(5), exporter,
        )
        loop_table, _ = collect_scanner_flows_loop(
            merit, flow_population[:8], self.WINDOW, clock,
            np.random.default_rng(5), exporter,
        )
        assert (table.sampled == 0).any()  # keep_zero really kept rows
        _assert_tables_identical(table, loop_table)

    def test_rng_consumed_exactly_once(self, merit_world, flow_population):
        # The legacy rng argument now only seeds the derived streams:
        # after collection it must sit exactly one draw in.
        _, merit = merit_world
        clock = SimClock()
        rng = np.random.default_rng(5)
        merit.collect_scanner_flows(
            flow_population[:4], self.WINDOW, clock, rng
        )
        reference = np.random.default_rng(5)
        reference.integers(0, 2**63)
        assert rng.integers(0, 2**32) == reference.integers(0, 2**32)


class TestShardedEqualsSerial:
    WINDOW = (0.0, 2 * DAY)

    def _mixes_and_base(self, merit, scanners, seed=5):
        sources = np.array([int(s.src) for s in scanners], dtype=np.uint32)
        mixes = merit.router_mix_many(sources)
        base = flow_base_seed(np.random.default_rng(seed))
        return mixes, base

    @given(
        workers=st.integers(min_value=1, max_value=8),
        schedule=st.sampled_from(["static", "packed", "stealing"]),
    )
    @settings(max_examples=18, deadline=None)
    def test_any_worker_count(
        self, merit_world, flow_population, workers, schedule
    ):
        _, merit = merit_world
        mixes, base = self._mixes_and_base(merit, flow_population)
        serial = synthesize_flow_columns(
            flow_population, mixes, merit.transit_view, self.WINDOW, DAY, base
        )
        sharded = parallel_flow_columns(
            flow_population, mixes, merit.transit_view, self.WINDOW, DAY, base,
            workers=workers, schedule=schedule, use_processes=False,
        )
        _assert_columns_identical(serial, sharded)

    @pytest.mark.parametrize("schedule", ["static", "packed", "stealing"])
    def test_more_workers_than_scanners(
        self, merit_world, flow_population, schedule
    ):
        _, merit = merit_world
        few = flow_population[:3]
        mixes, base = self._mixes_and_base(merit, few)
        serial = synthesize_flow_columns(
            few, mixes, merit.transit_view, self.WINDOW, DAY, base
        )
        sharded = parallel_flow_columns(
            few, mixes, merit.transit_view, self.WINDOW, DAY, base,
            workers=8, schedule=schedule, use_processes=False,
        )
        _assert_columns_identical(serial, sharded)

    @pytest.mark.parametrize("schedule", ["packed", "stealing"])
    def test_scheduled_telemetry_units(
        self, merit_world, flow_population, schedule
    ):
        # Satellite units contract: per-shard telemetry ``rows`` counts
        # pre-sampling synthesis rows — their sum equals the serial
        # FlowColumns length — while the exported table (post 1:1000
        # sampling) can only be shorter.  The two quantities must never
        # be conflated again (they once shared a name in BENCH_flows).
        _, merit = merit_world
        mixes, base = self._mixes_and_base(merit, flow_population)
        serial = synthesize_flow_columns(
            flow_population, mixes, merit.transit_view, self.WINDOW, DAY, base
        )
        telemetry = PipelineTelemetry()
        sharded = parallel_flow_columns(
            flow_population, mixes, merit.transit_view, self.WINDOW, DAY, base,
            workers=3, schedule=schedule, use_processes=False,
            telemetry=telemetry,
        )
        workers = telemetry.flow_worker_stats
        assert len(workers) == 3
        assert sum(w.rows for w in workers) == len(serial.day)
        assert sum(w.scanners for w in workers) == len(flow_population)
        assert all(w.planned_cost > 0 for w in workers)
        assert all(w.tasks >= 1 for w in workers)
        if schedule == "stealing":
            assert sum(w.tasks for w in workers) > 3
        exporter = NetflowExporter()
        table = exporter.export_columns(sharded, base)
        assert len(table) <= len(serial.day)

    def test_process_pool_smoke(self, merit_world, flow_population):
        # One real ProcessPoolExecutor pass: pickling, merge order,
        # telemetry — everything the in-process property can't see.
        _, merit = merit_world
        clock = SimClock()
        telemetry = PipelineTelemetry()
        table, totals = merit.collect_scanner_flows(
            flow_population, self.WINDOW, clock, np.random.default_rng(5),
            workers=2, telemetry=telemetry,
        )
        serial_table, serial_totals = merit.collect_scanner_flows(
            flow_population, self.WINDOW, clock, np.random.default_rng(5)
        )
        _assert_tables_identical(table, serial_table)
        assert totals == serial_totals
        assert len(telemetry.flow_worker_stats) == 2
        assert sum(w.scanners for w in telemetry.flow_worker_stats) == len(
            flow_population
        )
        assert "flows" in telemetry.stages
        assert telemetry.stages["flows"].items_in == len(flow_population)


class TestVectorizedExporter:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        keep_zero=st.booleans(),
        sampling_rate=st.sampled_from([1, 10, 1_000]),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_sample_count(self, seed, keep_zero, sampling_rate):
        data_rng = np.random.default_rng(seed)
        n = int(data_rng.integers(0, 40))
        rows = [
            (
                int(data_rng.integers(0, 3)),
                int(data_rng.integers(0, 5)),
                int(data_rng.integers(0, 2**32)),
                int(data_rng.integers(0, 2**16)),
                int(data_rng.integers(0, 256)),
                int(data_rng.integers(0, 50_000)),
            )
            for _ in range(n)
        ]
        exporter = NetflowExporter(
            sampling_rate=sampling_rate, keep_zero=keep_zero
        )
        table = exporter.export(rows, np.random.default_rng(seed + 1))

        scalar_rng = np.random.default_rng(seed + 1)
        expected = []
        for router, day, src, dport, proto, true_count in rows:
            sampled = exporter.sample_count(true_count, scalar_rng)
            if sampled == 0 and not keep_zero:
                continue
            expected.append(
                (router, day, src, dport, proto,
                 sampled * sampling_rate, sampled)
            )
        from repro.flows.netflow import FlowTable

        _assert_tables_identical(table, FlowTable.from_rows(expected))

    def test_export_columns_deterministic_by_seed(self):
        columns = FlowColumns.from_rows(
            [(0, 0, 100, 80, 6, 50_000), (1, 1, 200, 23, 6, 9_000)]
        )
        exporter = NetflowExporter(sampling_rate=1_000)
        a = exporter.export_columns(columns, seed=99)
        b = exporter.export_columns(columns, seed=99)
        _assert_tables_identical(a, b)


class TestCountColumns:
    VIEW = View("flows-view", PrefixSet.parse(["10.0.0.0/20"]))

    def _rows_from_columns(self, columns):
        day, port, proto, count = columns
        return [
            (int(d), int(p), int(pr), int(c))
            for d, p, pr, c in zip(day, port, proto, count)
        ]

    @given(
        mode=st.sampled_from(list(ScanMode)),
        start=st.floats(min_value=0.0, max_value=3 * DAY, allow_nan=False),
        duration=st.floats(min_value=600.0, max_value=2 * DAY, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_count_rows(self, mode, start, duration, seed):
        scanner = Scanner(
            src=0x0A000001,
            behavior="test",
            sessions=[
                _session(mode, start, duration),
                _session(mode, start + duration + 1_000.0, duration / 2),
            ],
            seed=seed,
        )
        window = (0.0, 4 * DAY)
        loop_rows = scanner.count_rows(
            self.VIEW, window, DAY, np.random.default_rng(seed)
        )
        columns = scanner.count_columns(
            self.VIEW, window, DAY, np.random.default_rng(seed)
        )
        assert self._rows_from_columns(columns) == loop_rows

    def test_empty_window(self):
        scanner = Scanner(
            src=1, behavior="t",
            sessions=[_session(ScanMode.COVERAGE, 0.0, DAY)], seed=1,
        )
        columns = scanner.count_columns(
            self.VIEW, (10 * DAY, 11 * DAY), DAY, np.random.default_rng(0)
        )
        assert all(len(c) == 0 for c in columns)


class TestRunnerIntegration:
    def test_collect_flows_workers_identical(self, tiny_result):
        # Bypass the cache: explicit exporters force fresh collection.
        serial = tiny_result.collect_flows(
            exporter=NetflowExporter(), workers=1
        )
        sharded = tiny_result.collect_flows(
            exporter=NetflowExporter(), workers=2
        )
        _assert_tables_identical(serial[0], sharded[0])
        assert serial[1] == sharded[1]

    def test_flow_columns_concat_empty(self):
        merged = FlowColumns.concat([FlowColumns(), FlowColumns()])
        assert len(merged) == 0

    def test_true_totals_grouping(self):
        columns = FlowColumns.from_rows(
            [
                (0, 0, 1, 80, 6, 10),
                (0, 0, 2, 443, 6, 5),
                (2, 3, 1, 80, 6, 7),
            ]
        )
        assert columns.true_totals() == {(0, 0): 15, (2, 3): 7}
