"""Unit tests for the three aggressive-hitter definitions."""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.detection import (
    definition_overlap,
    detect_all,
    detect_dispersion,
    detect_ports,
    detect_volume,
    jaccard,
)
from repro.core.events import EventTable

DAY = 86_400.0


def make_events(rows):
    """rows: (src, dport, proto, start, end, packets, unique_dsts)."""
    arr = np.array(rows, dtype=np.float64)
    return EventTable(
        src=arr[:, 0].astype(np.uint32),
        dport=arr[:, 1].astype(np.uint16),
        proto=arr[:, 2].astype(np.uint8),
        start=arr[:, 3],
        end=arr[:, 4],
        packets=arr[:, 5].astype(np.int64),
        unique_dsts=arr[:, 6].astype(np.int64),
    )


class TestJaccard:
    def test_basic(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_empty(self):
        assert jaccard(set(), set()) == 0.0


class TestDispersion:
    def test_threshold_is_fraction_of_dark_space(self):
        events = make_events(
            [
                (1, 80, 6, 0, 10, 200, 150),  # >= 10% of 1000
                (2, 80, 6, 0, 10, 200, 99),  # below
            ]
        )
        result = detect_dispersion(events, dark_size=1_000)
        assert result.sources == {1}
        assert result.threshold == pytest.approx(100.0)

    def test_boundary_inclusive(self):
        events = make_events([(1, 80, 6, 0, 10, 100, 100)])
        result = detect_dispersion(events, dark_size=1_000)
        assert result.sources == {1}

    def test_daily_breakdown(self):
        events = make_events(
            [
                (1, 80, 6, 0.5 * DAY, 2.5 * DAY, 500, 500),  # days 0-2
                (2, 80, 6, 1.2 * DAY, 1.4 * DAY, 500, 500),  # day 1
            ]
        )
        result = detect_dispersion(events, dark_size=1_000)
        assert result.new_on(0) == {1}
        assert result.new_on(1) == {2}
        assert result.active_on(0) == {1}
        assert result.active_on(1) == {1, 2}
        assert result.active_on(2) == {1}

    def test_active_includes_non_qualifying_events_of_ah(self):
        # Once a source qualifies, all its events mark activity days.
        events = make_events(
            [
                (1, 80, 6, 0, 10, 500, 500),
                (1, 443, 6, 1.5 * DAY, 1.5 * DAY + 10, 5, 5),
            ]
        )
        result = detect_dispersion(events, dark_size=1_000)
        assert result.active_on(1) == {1}

    def test_qualifying_events_returned(self):
        events = make_events(
            [(1, 80, 6, 0, 10, 500, 500), (2, 80, 6, 0, 10, 5, 5)]
        )
        result = detect_dispersion(events, dark_size=1_000)
        assert len(result.qualifying_events) == 1


class TestVolume:
    def test_tail_selection(self):
        rows = [(i, 80, 6, 0, 10, 10, 5) for i in range(99)]
        rows.append((999, 80, 6, 0, 10, 10_000, 500))
        result = detect_volume(make_events(rows), DetectionConfig(alpha=0.01))
        assert result.sources == {999}
        assert result.threshold >= 10

    def test_min_threshold_floor(self):
        rows = [(i, 80, 6, 0, 10, 1, 1) for i in range(10)]
        config = DetectionConfig(alpha=0.01, min_packet_threshold=5)
        result = detect_volume(make_events(rows), config)
        assert result.sources == set()
        assert result.threshold == 5

    def test_empty_events(self):
        result = detect_volume(EventTable.empty())
        assert result.sources == set()


class TestPorts:
    def test_omniscanner_detected(self):
        rows = []
        # Background: 200 single-port sources.
        for i in range(200):
            rows.append((i, 80, 6, 0, 10, 5, 5))
        # One source touching 50 ports the same day.
        for port in range(1_000, 1_050):
            rows.append((9_999, port, 6, 0, 10, 2, 2))
        result = detect_ports(make_events(rows), DetectionConfig(alpha=0.01))
        assert result.sources == {9_999}
        assert result.threshold >= 1

    def test_daily_granularity(self):
        # Ports spread across different days do not accumulate.
        rows = []
        for i in range(100):
            rows.append((i, 80, 6, 0, 10, 5, 5))
        for day, port in enumerate(range(2_000, 2_020)):
            rows.append((7_777, port, 6, day * DAY, day * DAY + 10, 2, 2))
        result = detect_ports(make_events(rows), DetectionConfig(alpha=0.01))
        assert 7_777 not in result.sources

    def test_empty_events(self):
        assert detect_ports(EventTable.empty()).sources == set()


class TestDetectAllAndOverlap:
    def test_detect_all_keys(self, tiny_result):
        assert set(tiny_result.detections) == {1, 2, 3}

    def test_overlap_table_consistency(self, tiny_result):
        table = definition_overlap(tiny_result.detections)
        ips = table["IP"]
        assert ips["D1&D2"] <= min(ips["D1"], ips["D2"])
        assert ips["D1&D2&D3"] <= ips["D1&D2"]
        assert ips["D1&D2&D3"] <= ips["D2&D3"]

    def test_overlap_with_registry_rows(self, tiny_result):
        table = definition_overlap(
            tiny_result.detections, tiny_result.internet.registry
        )
        assert set(table) == {"IP", "ASN", "Org", "Country"}
        for row in ("ASN", "Org", "Country"):
            assert table[row]["D1"] <= table["IP"]["D1"]

    def test_tiny_definitions_shape(self, tiny_result):
        det = tiny_result.detections
        # Definitions 1 and 2 overlap strongly; definition 3 is small.
        assert jaccard(det[1].sources, det[2].sources) > 0.5
        assert len(det[3]) < len(det[1])
