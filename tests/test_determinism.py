"""Reproducibility guarantees.

Every table and figure must regenerate bit-identically from a scenario
seed — including across processes with different PYTHONHASHSEED values
(a past bug: view-keyed RNG substreams were derived via the salted
built-in ``hash``).
"""

import numpy as np

from repro.net.prefix import Prefix, PrefixSet
from repro.scanners.base import Scanner, View
from repro.sim.runner import run_scenario
from repro.sim.scenario import tiny_scenario
from tests.test_scanner_base import coverage_session


class TestScannerDeterminism:
    def test_view_key_is_stable_not_salted(self):
        # The per-view RNG key must come from a content hash, not from
        # Python's process-salted str hash.
        view = View(name="darknet", prefixes=PrefixSet([Prefix.parse("10.0.0.0/24")]))
        scanner = Scanner(src=1, behavior="t", sessions=[coverage_session(0.5)], seed=7)
        rng_a = scanner._rng_for_view(view)
        rng_b = scanner._rng_for_view(view)
        assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)
        import zlib

        expected = np.random.default_rng((7, zlib.crc32(b"darknet")))
        assert scanner._rng_for_view(view).integers(0, 2**31) == expected.integers(
            0, 2**31
        )


class TestScenarioDeterminism:
    def test_two_runs_identical(self):
        a = run_scenario(tiny_scenario())
        b = run_scenario(tiny_scenario())
        assert len(a.capture) == len(b.capture)
        assert np.array_equal(a.capture.packets.src, b.capture.packets.src)
        assert np.array_equal(a.capture.packets.ts, b.capture.packets.ts)
        for d in (1, 2, 3):
            assert a.detections[d].sources == b.detections[d].sources
            assert a.detections[d].threshold == b.detections[d].threshold

    def test_flows_and_streams_identical(self):
        a = run_scenario(tiny_scenario())
        b = run_scenario(tiny_scenario())
        flows_a, totals_a = a.collect_flows()
        flows_b, totals_b = b.collect_flows()
        assert totals_a == totals_b
        assert np.array_equal(flows_a.packets, flows_b.packets)
        stream_a = a.record_streams()["merit"]
        stream_b = b.record_streams()["merit"]
        assert np.array_equal(stream_a.ah_pps, stream_b.ah_pps)
        assert np.array_equal(stream_a.total_pps, stream_b.total_pps)
