"""Unit tests for the origin-concentration machinery (Table 5 drivers)."""

import numpy as np

from repro.net.addr import slash24
from repro.net.internet import FLAGSHIP_CLOUD_ASN, FLAGSHIP_CLOUD_ORG
from repro.scanners.origins import (
    AGGRESSIVE_AFFINITY,
    BACKGROUND_AFFINITY,
    OriginSampler,
)


class TestFlagshipCloud:
    def test_flagship_exists(self, small_internet):
        system = small_internet.registry.by_asn(FLAGSHIP_CLOUD_ASN)
        assert system.org == FLAGSHIP_CLOUD_ORG
        assert system.country == "US"
        # Deliberately outsized: three /12s.
        assert system.size == 3 * 2**20

    def test_flagship_dominates_aggressive_origins(self, small_internet, rng):
        sampler = OriginSampler(small_internet, AGGRESSIVE_AFFINITY)
        sources = sampler.sample_sources(rng, 600)
        idx = small_internet.registry.lookup_index(sources)
        asns = [small_internet.registry.systems[i].asn for i in idx]
        flagship_share = asns.count(FLAGSHIP_CLOUD_ASN) / len(asns)
        # The single flagship AS originates more scanners than any
        # uniform share would give it (1 of ~70 ASes).
        assert flagship_share > 0.05
        counts = {}
        for asn in asns:
            counts[asn] = counts.get(asn, 0) + 1
        assert max(counts, key=counts.get) == FLAGSHIP_CLOUD_ASN


class TestHeavyTail:
    def test_per_as_popularity_is_heavy_tailed(self, small_internet, rng):
        sampler = OriginSampler(small_internet, BACKGROUND_AFFINITY)
        idx = sampler.sample_as_indexes(rng, 5_000)
        counts = np.bincount(idx, minlength=len(small_internet.registry))
        counts = np.sort(counts)[::-1]
        # Top-5 ASes take far more than 5 uniform shares.
        uniform_share = 5 / len(small_internet.registry)
        assert counts[:5].sum() / counts.sum() > 3 * uniform_share

    def test_popularity_deterministic_across_samplers(self, small_internet):
        a = OriginSampler(small_internet, BACKGROUND_AFFINITY)
        b = OriginSampler(small_internet, BACKGROUND_AFFINITY)
        assert np.allclose(a._weights, b._weights)


class TestSubnetClustering:
    def test_sources_cluster_into_slash24s(self, small_internet, rng):
        sampler = OriginSampler(small_internet, AGGRESSIVE_AFFINITY)
        sources = sampler.sample_sources(rng, 400)
        unique_24 = len({int(slash24(int(s))) for s in sources})
        # The paper's top origin packs ~5 AH per /24; our clustering
        # should land well below 1 subnet per source.
        assert unique_24 < 0.8 * len(sources)

    def test_reuse_rate_configurable(self, small_internet, rng):
        tight = OriginSampler(
            small_internet, AGGRESSIVE_AFFINITY, subnet_reuse=0.95
        )
        loose = OriginSampler(
            small_internet, AGGRESSIVE_AFFINITY, subnet_reuse=0.0
        )
        tight_24 = len(
            {int(slash24(int(s))) for s in tight.sample_sources(rng, 300)}
        )
        loose_24 = len(
            {int(slash24(int(s))) for s in loose.sample_sources(rng, 300)}
        )
        assert tight_24 < loose_24

    def test_clustered_sources_stay_in_as(self, small_internet, rng):
        sampler = OriginSampler(small_internet, AGGRESSIVE_AFFINITY)
        sources = sampler.sample_sources(rng, 300)
        idx = small_internet.registry.lookup_index(sources)
        assert np.all(idx >= 0)
