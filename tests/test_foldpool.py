"""Tests for the serve fold pool (repro.serve.foldpool).

Covers pooled-vs-local result identity (the acceptance bar for the
off-loop fold path), micro-batch coalescing through
``ingest_payloads``, snapshot/restore round-trips while pooled, and
the worker-death failure mode (state-desync detection + heal from
snapshot).
"""

import os
import signal

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.engine import DetectionEngine, gate_time_order
from repro.core.faults import CheckpointStore
from repro.io.packetlog import packets_to_npz_bytes
from repro.packet import PacketBatch, Protocol
from repro.serve.foldpool import FoldPool, FoldPoolError
from repro.serve.tenants import Tenant, TenantConfig

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)
_TIMEOUT = 600.0


def _capture(seed, n=5_000, duration=120_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 100, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _engine(**kwargs):
    return DetectionEngine(
        _TIMEOUT, _DARK_SIZE, _CONFIG, 86_400.0, **kwargs
    )


def _chunks(batch, n_chunks):
    edges = np.linspace(0, len(batch), n_chunks + 1).astype(int)
    return [
        batch.select(slice(int(a), int(b)))
        for a, b in zip(edges[:-1], edges[1:])
        if b > a
    ]


def _blobs(batch, n_chunks):
    return [packets_to_npz_bytes(c) for c in _chunks(batch, n_chunks)]


@pytest.fixture(scope="module")
def pool():
    with FoldPool(2) as p:
        yield p


class TestGate:
    def test_passes_ordered_drops_stale(self):
        batch = _capture(1)
        chunks = _chunks(batch, 4)
        errors = []
        kept = gate_time_order(chunks, None, errors)
        assert kept == chunks and not errors
        # Replaying an early chunk after a later one is rejected.
        errors = []
        kept = gate_time_order(
            [chunks[2], chunks[0], chunks[3]], None, errors
        )
        assert kept == [chunks[2], chunks[3]]
        assert len(errors) == 1 and "out of order" in errors[0]

    def test_respects_prior_watermark_and_skips_empty(self):
        batch = _capture(2)
        empty = batch.select(slice(0, 0))
        errors = []
        kept = gate_time_order(
            [empty, batch], float(batch.ts.max()) + 1.0, errors
        )
        assert kept == [] and len(errors) == 1


class TestPooledParity:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    @pytest.mark.parametrize("coalesce", [1, 3, 7])
    def test_pooled_coalesced_matches_serial_local(
        self, pool, workers, coalesce
    ):
        batch = _capture(7)
        blobs = _blobs(batch, 12)

        serial = _engine(workers=workers)
        for blob in blobs:
            serial.ingest_payloads([blob])
        expected = serial.query()

        pooled = _engine(workers=workers)
        pooled.attach_pool(pool, f"t-{workers}-{coalesce}")
        for start in range(0, len(blobs), coalesce):
            pooled.ingest_payloads(blobs[start:start + coalesce])
        got = pooled.query()

        assert got.packets == expected.packets == len(batch)
        assert got.events == expected.events
        assert got.chunks == expected.chunks == len(blobs)
        for definition in (1, 2, 3):
            assert got.ah_sources(definition) == expected.ah_sources(
                definition
            )
        pooled.detach_pool()

    def test_attach_with_existing_state_then_finish(self, pool):
        batch = _capture(8)
        chunks = _chunks(batch, 6)

        reference = _engine(workers=2)
        for chunk in chunks:
            reference.ingest(chunk)
        expected_events, expected_det = reference.finish()

        hybrid = _engine(workers=2)
        for chunk in chunks[:3]:
            hybrid.ingest(chunk)
        hybrid.attach_pool(pool, "hybrid")
        assert hybrid.pooled
        for chunk in chunks[3:]:
            hybrid.ingest(chunk)
        # finish() detaches and merges — identical to the local run.
        events, detections = hybrid.finish()
        assert not hybrid.pooled
        assert len(events) == len(expected_events)
        for definition in (1, 2, 3):
            assert (
                detections[definition].sources
                == expected_det[definition].sources
            )

    def test_snapshot_restore_while_pooled(self, pool, tmp_path):
        batch = _capture(9)
        blobs = _blobs(batch, 8)
        engine = _engine(workers=2)
        engine.attach_pool(pool, "snap")
        engine.ingest_payloads(blobs[:4])
        snapshot = engine.snapshot()
        engine.detach_pool()

        resumed = DetectionEngine.restore(snapshot)
        resumed.attach_pool(pool, "snap-resume")
        resumed.ingest_payloads(blobs[4:])
        got = resumed.query()
        resumed.detach_pool()

        serial = _engine(workers=2)
        for blob in blobs:
            serial.ingest_payloads([blob])
        expected = serial.query()
        assert got.packets == expected.packets
        for definition in (1, 2, 3):
            assert got.ah_sources(definition) == expected.ah_sources(
                definition
            )

    def test_bad_blob_isolated_in_coalesced_fold(self, pool):
        batch = _capture(10)
        blobs = _blobs(batch, 4)
        engine = _engine()
        engine.attach_pool(pool, "badblob")
        report = engine.ingest_payloads(
            blobs[:2] + [b"garbage, not an npz"] + blobs[2:]
        )
        assert report.chunks == len(blobs)
        assert len(report.errors) == 1
        assert report.packets == len(batch)
        engine.detach_pool()

    def test_abandon_pool_clears_worker_state(self, pool):
        engine = _engine()
        engine.attach_pool(pool, "gone")
        engine.ingest_payloads(_blobs(_capture(11), 2))
        assert engine.packets_seen > 0
        engine.abandon_pool()
        assert not engine.pooled
        assert pool.collect(("gone", 0)) is None


class TestWorkerDeath:
    def test_dead_worker_raises_and_tenant_heals(self, tmp_path):
        config = TenantConfig(
            timeout=_TIMEOUT,
            dark_size=_DARK_SIZE,
            detection=_CONFIG,
            snapshot_every_chunks=None,
        )
        batch = _capture(12)
        blobs = _blobs(batch, 6)
        with FoldPool(1) as pool:
            from repro.core.telemetry import PipelineTelemetry

            telemetry = PipelineTelemetry()
            store = CheckpointStore(
                tmp_path / "ckpt", health=telemetry.health
            )
            engine = _engine(store=store)
            tenant = Tenant(
                tenant_id="t",
                config=config,
                engine=engine,
                telemetry=telemetry,
                store=store,
            )
            tenant.attach_pool(pool)
            tenant.ingest_payloads(blobs[:3])
            tenant.save_snapshot()
            tenant.ingest_payloads([blobs[3]])  # unsnapshotted progress

            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            with pytest.raises(FoldPoolError):
                tenant.ingest_payloads([blobs[4]])

            # The server's heal path: rebuild from the last persisted
            # snapshot and re-attach; the stream resumes from chunk 3.
            tenant.restore_from_store()
            assert tenant.recycles == 1
            assert tenant.engine.pooled
            report = tenant.engine.ingest_payloads(blobs[3:])
            assert report.chunks == 3

            serial = _engine()
            for blob in blobs:
                serial.ingest_payloads([blob])
            expected = serial.query()
            got = tenant.engine.query()
            assert got.packets == expected.packets
            for definition in (1, 2, 3):
                assert got.ah_sources(definition) == expected.ah_sources(
                    definition
                )
            tenant.detach_pool()

    def test_respawned_worker_detects_state_desync(self):
        with FoldPool(1) as pool:
            engine = _engine()
            engine.attach_pool(pool, "desync")
            engine.ingest_payloads(_blobs(_capture(13), 2))
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            # First call hits the dead pipe...
            with pytest.raises(FoldPoolError):
                engine.ingest_payloads(_blobs(_capture(13), 2))
            # ...and the respawned (empty) worker must refuse to fold
            # as if nothing happened rather than restart from zero.
            with pytest.raises(FoldPoolError, match="no state|out of sync"):
                engine.ingest_payloads(_blobs(_capture(14), 2))
