"""Unit tests for ACKed-list and honeypot validation."""

import numpy as np
import pytest

from repro.core import validation
from repro.labeling.acknowledged import AckedOrg, AcknowledgedRegistry
from repro.labeling.greynoise import Classification, GreyNoiseDB, GreyNoiseRecord


@pytest.fixture()
def registry(rng):
    orgs = (
        AckedOrg("alpha", "Alpha", "alpha", list_coverage=1.0, ptr_coverage=1.0),
        AckedOrg("beta", "Beta", "beta", list_coverage=0.0, ptr_coverage=1.0),
        AckedOrg("gamma", "Gamma", "gamma", list_coverage=0.0, ptr_coverage=0.0),
    )
    fleets = {
        "alpha": np.array([10, 11], dtype=np.uint32),
        "beta": np.array([20, 21], dtype=np.uint32),
        "gamma": np.array([30], dtype=np.uint32),
    }
    return AcknowledgedRegistry.build(orgs, fleets, rng)


class TestMatchAcknowledged:
    def test_partition_of_matches(self, registry):
        result = validation.match_acknowledged({10, 11, 20, 30, 99}, registry)
        assert result.ip_matches == 2  # alpha, listed
        assert result.domain_matches == 1  # beta via PTR
        assert result.total_ips == 3
        assert result.orgs == 2
        assert result.matched_sources() == {10, 11, 20}

    def test_gamma_unmatchable(self, registry):
        result = validation.match_acknowledged({30}, registry)
        assert result.total_ips == 0

    def test_packet_accounting(self, registry, tiny_result):
        # Use the tiny scenario's capture with a synthetic AH set that
        # includes a couple of real darknet sources.
        srcs = tiny_result.capture.packets.unique_sources()[:5]
        ah = {int(s) for s in srcs}
        result = validation.match_acknowledged(ah, registry, tiny_result.capture)
        # None of those random sources belong to the toy registry.
        assert result.packets == 0
        assert result.packets_share_of_ah == 0.0

    def test_unlisted_org_ips(self, registry):
        out = validation.unlisted_org_ips({10, 20, 21, 99}, registry)
        assert out == {20, 21}


class TestGreyNoiseValidation:
    @pytest.fixture()
    def db(self):
        db = GreyNoiseDB()
        db.records[1] = GreyNoiseRecord(1, Classification.MALICIOUS, ("Mirai",))
        db.records[2] = GreyNoiseRecord(2, Classification.UNKNOWN, ("ZMap Client",))
        db.records[3] = GreyNoiseRecord(3, Classification.BENIGN, ("Web Crawler",))
        return db

    def test_overlap_average(self, db):
        daily = {0: {1, 2}, 1: {1, 9}}
        assert validation.greynoise_overlap(daily, db) == pytest.approx(0.75)

    def test_overlap_skips_empty_days(self, db):
        assert validation.greynoise_overlap({0: set()}, db) == 0.0

    def test_breakdown_removes_acked(self, db):
        out = validation.greynoise_breakdown({1, 2, 3, 4}, {3}, db)
        assert out["acked"] == 1
        assert out["malicious"] == 1
        assert out["unknown"] == 1
        assert out["not-seen"] == 1
        assert out["benign"] == 0

    def test_tags_exclude_acked(self, db):
        rows = validation.greynoise_tags({1, 2, 3}, {3}, db)
        tags = dict(rows)
        assert "Web Crawler" not in tags
        assert tags["Mirai"] == 1
        assert tags["ZMap Client"] == 1

    def test_tags_top_n(self, db):
        rows = validation.greynoise_tags({1, 2}, set(), db, top_n=1)
        assert len(rows) == 1


class TestScenarioLevelValidation:
    def test_gn_overlap_high_for_tiny_ah(self, tiny_report):
        # The paper's 99.3% check: detected AH are near-universally
        # visible at the distributed honeypots.
        assert tiny_report.greynoise_overlap() > 0.9

    def test_breakdown_sums_to_population(self, tiny_report):
        breakdown = tiny_report.greynoise_breakdown()
        assert sum(breakdown.values()) == len(tiny_report.detections[1])

    def test_tags_present(self, tiny_report):
        rows = tiny_report.greynoise_tags_table()
        assert rows
        tags = dict(rows)
        assert any("Mirai" in t or "ZMap" in t for t in tags)
