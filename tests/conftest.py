"""Shared fixtures: a session-scoped tiny scenario and building blocks.

The tiny scenario exercises every code path (darknet, events, all three
detectors, NetFlow at three routers, both stream stations) in about a
second; tests that only need a world to poke at share one run of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import StudyReport, run_study
from repro.net.internet import InternetConfig, build_internet
from repro.sim.scenario import tiny_scenario


@pytest.fixture(scope="session")
def tiny_report() -> StudyReport:
    """One fully-run tiny scenario shared by the whole session."""
    return run_study(tiny_scenario())


@pytest.fixture(scope="session")
def tiny_result(tiny_report):
    return tiny_report.result


@pytest.fixture(scope="session")
def small_internet():
    """A small synthetic Internet for unit tests."""
    return build_internet(InternetConfig(seed=99, core_as_count=40, tail_as_count=30))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
