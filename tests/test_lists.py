"""Unit tests for the operational blocklists."""

import pytest

from repro.core import lists
from repro.core.lists import BlocklistEntry, DailyBlocklist


def entry(address, packets, defs=(1,), acked=False):
    return BlocklistEntry(
        address=address,
        definitions=tuple(defs),
        packets=packets,
        asn=65_001,
        country="US",
        acknowledged=acked,
    )


class TestBlocklist:
    def test_entry_format(self):
        line = entry(167_772_161, 500, defs=(1, 2)).format()
        assert line == "10.0.0.1,1+2,500,65001,US,0"

    def test_render_header(self):
        blocklist = DailyBlocklist(day=0, entries=[entry(1, 10)])
        text = blocklist.render()
        assert text.startswith("# ip,definitions")
        assert len(text.splitlines()) == 2

    def test_non_acknowledged_filter(self):
        blocklist = DailyBlocklist(
            day=0, entries=[entry(1, 10), entry(2, 20, acked=True)]
        )
        assert [e.address for e in blocklist.non_acknowledged()] == [1]

    def test_top_by_packets(self):
        blocklist = DailyBlocklist(
            day=0, entries=[entry(1, 10), entry(2, 99), entry(3, 50)]
        )
        top = blocklist.top_by_packets(2)
        assert [e.address for e in top] == [2, 3]


class TestAmelioration:
    def test_curve(self):
        blocklist = DailyBlocklist(
            day=0, entries=[entry(1, 50), entry(2, 30), entry(3, 20)]
        )
        curve = lists.amelioration_curve(blocklist)
        assert curve.tolist() == pytest.approx([0.5, 0.8, 1.0])

    def test_empty_curve(self):
        assert len(lists.amelioration_curve(DailyBlocklist(day=0))) == 0

    def test_size_for_share(self):
        blocklist = DailyBlocklist(
            day=0, entries=[entry(1, 50), entry(2, 30), entry(3, 20)]
        )
        assert lists.blocklist_size_for_share(blocklist, 0.5) == 1
        assert lists.blocklist_size_for_share(blocklist, 0.6) == 2
        assert lists.blocklist_size_for_share(blocklist, 1.0) == 3

    def test_size_validation(self):
        with pytest.raises(ValueError):
            lists.blocklist_size_for_share(DailyBlocklist(day=0), 0.0)


class TestBuildFromScenario:
    def test_build_daily(self, tiny_report):
        day = 1
        blocklist = tiny_report.daily_blocklist(day)
        assert len(blocklist) > 0
        active_union = set()
        for result in tiny_report.detections.values():
            active_union |= result.active_on(day)
        assert blocklist.addresses() == active_union

    def test_entries_sorted_by_packets(self, tiny_report):
        blocklist = tiny_report.daily_blocklist(1)
        packets = [e.packets for e in blocklist.entries]
        assert packets == sorted(packets, reverse=True)

    def test_origin_annotation(self, tiny_report):
        blocklist = tiny_report.daily_blocklist(1)
        assert all(e.asn > 0 for e in blocklist.entries)
        assert all(len(e.country) == 2 for e in blocklist.entries)

    def test_definitions_annotated(self, tiny_report):
        blocklist = tiny_report.daily_blocklist(1)
        for e in blocklist.entries:
            assert e.definitions
            assert set(e.definitions) <= {1, 2, 3}

    def test_empty_day(self, tiny_report):
        blocklist = tiny_report.daily_blocklist(9_999)
        assert len(blocklist) == 0

    def test_zipf_shape(self, tiny_report):
        # Blocking a small top-k removes a disproportionate share.
        blocklist = tiny_report.daily_blocklist(1)
        curve = lists.amelioration_curve(blocklist)
        if len(curve) >= 10:
            top_tenth = curve[max(len(curve) // 10 - 1, 0)]
            assert top_tenth > 1.5 / 10
