"""Integration tests: the full study pipeline over the tiny scenario.

These exercise the cross-module contracts the paper's experiments rely
on — the same joins the benchmarks print, asserted on shape rather than
exact numbers.
"""


from repro.core.characterize import top_fraction_share
from repro.packet import Protocol


class TestScenarioResult:
    def test_world_is_consistent(self, tiny_result):
        # The dark prefix belongs to the ISP's registered AS.
        dark = tiny_result.telescope.prefixes.prefixes[0]
        operator = tiny_result.internet.registry.lookup_one(dark.base)
        assert operator is not None
        assert operator.org == "telescope-operator-isp"

    def test_detected_sources_are_genuine(self, tiny_result):
        # The capture contains forged sources (spoofed scans) on top of
        # the genuine population, but nothing forged may ever be
        # detected: every AH traces back to a real scanner.
        population = {int(s) for s in tiny_result.population.sources()}
        observed = {int(s) for s in tiny_result.capture.packets.unique_sources()}
        forged = observed - population
        for result in tiny_result.detections.values():
            assert not (result.sources & forged)
        # Spoofed scans do appear in the raw capture (realism check).
        if tiny_result.population.by_behavior.get("spoofed-scan"):
            assert forged

    def test_detection_recall_on_ground_truth(self, tiny_result):
        # Most sources built to be aggressive are detected by def 1 or 2.
        truth = tiny_result.population.ground_truth_aggressive()
        detected = tiny_result.detections[1].sources | tiny_result.detections[2].sources
        recall = len(truth & detected) / len(truth)
        assert recall > 0.5

    def test_detection_precision_no_background(self, tiny_result):
        # Background noise never qualifies under definition 1.
        background = {
            int(s.src)
            for b in ("small-scan", "misconfig", "mirai-small")
            for s in tiny_result.population.by_behavior.get(b, [])
        }
        assert not (tiny_result.detections[1].sources & background)

    def test_flow_cache_stable(self, tiny_result):
        a = tiny_result.collect_flows()
        b = tiny_result.collect_flows()
        assert a is b

    def test_flow_scanners_cover_ah_and_acked(self, tiny_result):
        srcs = {int(s.src) for s in tiny_result.flow_scanners()}
        for result in tiny_result.detections.values():
            darknet_visible = result.sources & {
                int(s) for s in tiny_result.population.sources()
            }
            assert darknet_visible <= srcs


class TestStudyReport:
    def test_dataset_summary(self, tiny_report):
        summary = tiny_report.dataset_summary()
        assert summary["packets"] > 0
        assert summary["events"] > 0
        assert summary["days"] == tiny_report.result.scenario.days

    def test_ah_majority_of_darknet_packets(self, tiny_report):
        # The paper's headline: a tiny share of sources (the AH)
        # contributes the majority of darknet packets.
        capture = tiny_report.result.capture
        ah = tiny_report.detections[1].sources
        share_sources = len(ah) / capture.source_count()
        share_packets = capture.packets_from(ah) / len(capture)
        assert share_sources < 0.2
        assert share_packets > 0.5

    def test_impact_cells_cover_flow_days(self, tiny_report):
        cells = tiny_report.impact_cells()
        days = {c.day for c in cells}
        assert days == set(tiny_report.result.scenario.flow_days)
        routers = {c.router for c in cells}
        assert routers == {0, 1, 2}

    def test_impact_fraction_bounds(self, tiny_report):
        for cell in tiny_report.impact_cells():
            assert 0.0 <= cell.fraction < 0.5

    def test_protocol_mix_tcp_dominant_and_consistent(self, tiny_report):
        table = tiny_report.protocol_table()
        for definition in (1, 2):
            dark = table[definition]["darknet"]
            flows = table[definition]["flows"]
            assert dark["TCP-SYN"] > 0.5
            # Darknet and flow mixes agree (Table 3's point).
            assert abs(dark["TCP-SYN"] - flows["TCP-SYN"]) < 0.15

    def test_acked_impact_table_shape(self, tiny_report):
        table = tiny_report.acked_impact_table()
        assert set(table) == {1, 2, 3}
        for per_router in table.values():
            for packets, fraction in per_router.values():
                assert packets >= 0
                assert 0.0 <= fraction <= 1.0

    def test_router_coverage_shape(self, tiny_report):
        # At tiny scale the 1:1000 sampling hides many small AH, so only
        # the structural properties are asserted here; the full-scale
        # Table 8 benchmark checks the paper's ~95-99% router-1 figure.
        rows = tiny_report.router_coverage_table()[1]
        assert rows
        for row in rows:
            assert row["active_ah"] > 0
            assert len(row["seen_fraction"]) == 3
            assert all(0.0 <= f <= 1.0 for f in row["seen_fraction"])
            assert max(row["seen_fraction"]) > 0.0

    def test_origins_table(self, tiny_report):
        rows, totals = tiny_report.origins_table()
        assert rows
        assert rows[0].unique_ips >= rows[-1].unique_ips
        count, share = totals["ips"]
        assert 0 < share <= 1.0

    def test_definition_overlap_table(self, tiny_report):
        table = tiny_report.definition_overlap_table()
        ips = table["IP"]
        assert ips["D1"] == len(tiny_report.detections[1])
        assert ips["D1&D2"] >= ips["D1&D2&D3"]

    def test_acked_validation_matches_some_orgs(self, tiny_report):
        table = tiny_report.acked_validation_table()
        result = table[1]
        assert result.total_ips > 0
        assert result.orgs > 0
        assert result.ip_matches + result.domain_matches == result.total_ips
        assert 0 < result.packets_share_of_ah < 1

    def test_temporal_trends_shape(self, tiny_report):
        points = tiny_report.temporal_trends()
        assert len(points) == tiny_report.result.scenario.days
        for p in points:
            assert p.active_ah >= p.daily_new_ah or p.daily_new_ah == 0
            assert p.all_daily_sources >= p.daily_new_ah

    def test_top_ports_tcp_heavy(self, tiny_report):
        rows = tiny_report.top_ports()
        assert rows
        tcp = sum(r.packets for r in rows if r.proto == Protocol.TCP_SYN.value)
        assert tcp / sum(r.packets for r in rows) > 0.6
        for r in rows:
            assert r.packets == r.zmap_packets + r.masscan_packets + r.other_packets

    def test_zipf_concentration(self, tiny_report):
        curve = tiny_report.zipf_contribution()
        assert len(curve) == len(tiny_report.detections[1])
        assert top_fraction_share(curve, 0.1) > 0.1

    def test_port_consistency_correlates(self, tiny_report):
        from repro.core.impact import rank_correlation

        rows = tiny_report.port_consistency()
        if len(rows) >= 5:
            assert rank_correlation(rows) > 0.3

    def test_stream_series_cached(self, tiny_report):
        a = tiny_report.stream_series()
        b = tiny_report.stream_series()
        assert a is b
