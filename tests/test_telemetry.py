"""Unit tests for the pipeline telemetry layer."""

import json

import pytest

from repro.core.telemetry import PipelineTelemetry, RunHealth, StageStats


class TestStageStats:
    def test_accumulates(self):
        stage = StageStats("detect")
        stage.add(100, 10, 0.5)
        stage.add(300, 20, 1.5)
        assert stage.items_in == 400
        assert stage.items_out == 30
        assert stage.seconds == 2.0
        assert stage.throughput == 200.0

    def test_throughput_before_data(self):
        assert StageStats("idle").throughput is None

    def test_as_dict(self):
        stage = StageStats("capture")
        stage.add(50, 50, 0.25)
        d = stage.as_dict()
        assert d["name"] == "capture"
        assert d["throughput"] == 200.0


class TestPipelineTelemetry:
    def _telemetry(self):
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        telemetry.record_chunk(
            packets=1_000,
            events_finalized=50,
            open_flows=200,
            window_end=3_600.0,
            watermark=3_400.0,
        )
        telemetry.record_chunk(
            packets=2_000,
            events_finalized=80,
            open_flows=150,
            window_end=7_200.0,
            watermark=7_150.0,
        )
        return telemetry

    def test_gauges(self):
        telemetry = self._telemetry()
        assert telemetry.chunks == 2
        assert telemetry.total_packets == 3_000
        assert telemetry.total_events == 130
        assert telemetry.peak_open_flows == 200
        assert telemetry.peak_chunk_packets == 2_000
        assert telemetry.watermark == 7_150.0
        # Worst lag came from the first chunk (200s vs 50s).
        assert telemetry.max_watermark_lag == 200.0

    def test_stage_registry(self):
        telemetry = PipelineTelemetry()
        stage = telemetry.stage("detect")
        stage.add(10, 5, 1.0)
        assert telemetry.stage("detect") is stage

    def test_summary_rows(self):
        telemetry = self._telemetry()
        telemetry.stage("detect").add(3_000, 130, 0.5)
        rows = dict(telemetry.summary_rows())
        assert rows["chunks"] == "2"
        assert rows["packets"] == "3,000"
        assert rows["peak open flows"] == "200"
        assert "6,000/s" in rows["stage detect"]

    def test_as_dict(self):
        telemetry = self._telemetry()
        d = telemetry.as_dict()
        assert d["chunks"] == 2
        assert d["max_watermark_lag"] == 200.0
        assert d["stages"] == {}

    def test_empty_formatting(self):
        rows = dict(PipelineTelemetry().summary_rows())
        assert rows["watermark"] == "n/a"
        assert rows["chunk seconds"] == "n/a"


class TestRunHealthDict:
    """The health block's keys are a stable contract: JSON consumers
    (bench matrix files, the serve /health endpoint) index into it
    without guards, so every key must exist even on a clean run."""

    STABLE_KEYS = {
        "retries",
        "respawns",
        "watchdog_timeouts",
        "checkpoint_hits",
        "checkpoint_writes",
        "checkpoint_corrupt",
        "quarantined",
        "quarantined_chunks",
        "any_events",
    }

    def test_clean_run_emits_every_key(self):
        d = RunHealth().as_dict()
        assert set(d) == self.STABLE_KEYS
        assert d["retries"] == 0
        assert d["quarantined"] == 0
        assert d["quarantined_chunks"] == []
        assert d["any_events"] is False

    def test_derived_keys_track_counters(self):
        health = RunHealth()
        health.record_quarantine("chunk-00001.npz")
        health.record_quarantine("chunk-00001.npz")  # idempotent
        health.retries = 3
        d = health.as_dict()
        assert d["quarantined"] == 1
        assert d["quarantined_chunks"] == ["chunk-00001.npz"]
        assert d["any_events"] is True

    def test_pipeline_as_dict_always_includes_health(self):
        d = PipelineTelemetry().as_dict()
        assert set(d["health"]) == self.STABLE_KEYS
        # The whole block must be JSON-serializable as-is.
        assert json.loads(json.dumps(d["health"]))["any_events"] is False


class TestServeStats:
    def test_accounts_enqueues_and_folds(self):
        from repro.core.telemetry import ServeStats

        stats = ServeStats()
        assert stats.mean_coalesced_chunks is None
        assert stats.fold_packets_per_second is None

        for _ in range(5):
            stats.record_enqueued(1_000)
        stats.record_fold(chunks=3, packets=300, seconds=0.5, queue_wait=0.1)
        stats.record_fold(chunks=2, packets=200, seconds=0.5, queue_wait=0.3)
        stats.record_fold(chunks=3, packets=100, seconds=1.0, queue_wait=0.2)

        assert stats.chunks_received == 5
        assert stats.bytes_received == 5_000
        assert stats.folds == 3
        assert stats.packets_folded == 600
        assert stats.max_coalesced_chunks == 3
        assert stats.max_queue_wait_seconds == 0.3
        assert stats.queue_wait_seconds == pytest.approx(0.6)
        assert stats.mean_coalesced_chunks == pytest.approx(8 / 3)
        assert stats.fold_packets_per_second == pytest.approx(300.0)
        assert stats.coalesce_histogram == {3: 2, 2: 1}

    def test_as_dict_is_json_friendly(self):
        from repro.core.telemetry import ServeStats

        stats = ServeStats()
        stats.record_enqueued(64)
        stats.record_fold(chunks=1, packets=10, seconds=0.1, queue_wait=0.0)
        stats.record_fold(chunks=4, packets=40, seconds=0.1, queue_wait=0.0)
        d = json.loads(json.dumps(stats.as_dict()))
        assert d["coalesce_histogram"] == {"1": 1, "4": 1}
        assert list(d["coalesce_histogram"]) == ["1", "4"]  # sorted
        assert d["folds"] == 2
        assert d["mean_coalesced_chunks"] == 2.5
