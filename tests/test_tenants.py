"""Tests for the tenant layer (repro.serve.tenants)."""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.packet import PacketBatch, Protocol
from repro.serve.tenants import TenantConfig, TenantRegistry
from tests.test_streaming import _assert_detections_identical

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)


def _config(**overrides) -> TenantConfig:
    base = dict(
        timeout=600.0,
        dark_size=_DARK_SIZE,
        detection=_CONFIG,
        snapshot_every_chunks=None,
    )
    base.update(overrides)
    return TenantConfig(**base)


def _capture(seed, n=8_000, duration=200_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 150, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _feed(tenant, batch, chunk_seconds=3_600.0):
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        tenant.ingest(chunk)


class TestConfigRoundTrip:
    def test_as_dict_from_dict(self):
        config = _config(workers=3, max_ecdf_samples=128, queue_depth=4)
        assert TenantConfig.from_dict(config.as_dict()) == config

    def test_detection_none_round_trips(self):
        config = _config(detection=None)
        restored = TenantConfig.from_dict(config.as_dict())
        assert restored.detection is None

    def test_coalesce_budgets_round_trip(self):
        config = _config(coalesce_chunks=5, coalesce_bytes=1_234_567)
        restored = TenantConfig.from_dict(config.as_dict())
        assert restored == config
        assert restored.coalesce_chunks == 5
        assert restored.coalesce_bytes == 1_234_567

    def test_legacy_dict_without_coalesce_keys_gets_defaults(self):
        # Registries persisted before micro-batching lack these keys.
        payload = _config().as_dict()
        del payload["coalesce_chunks"]
        del payload["coalesce_bytes"]
        restored = TenantConfig.from_dict(payload)
        assert restored.coalesce_chunks == 32
        assert restored.coalesce_bytes == 8 * 2**20


class TestRegistry:
    def test_create_get_remove(self):
        registry = TenantRegistry()
        tenant = registry.create("merit", _config())
        assert registry.get("merit") is tenant
        assert "merit" in registry
        assert registry.ids() == ["merit"]
        assert registry.remove("merit")
        assert registry.get("merit") is None
        assert not registry.remove("merit")

    def test_recreate_same_config_is_idempotent(self):
        registry = TenantRegistry()
        a = registry.create("t", _config())
        b = registry.create("t", _config())
        assert a is b

    def test_recreate_different_config_raises(self):
        registry = TenantRegistry()
        registry.create("t", _config())
        with pytest.raises(ValueError, match="different configuration"):
            registry.create("t", _config(workers=2))

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden"])
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid tenant id"):
            TenantRegistry().create(bad, _config())

    def test_isolation(self):
        # Two tenants fed different traffic never see each other's
        # sources — and their AH sets equal single-tenant runs.
        registry = TenantRegistry()
        a = registry.create("a", _config())
        b = registry.create("b", _config(max_ecdf_samples=16))
        batch_a, batch_b = _capture(1), _capture(2)
        _feed(a, batch_a)
        _feed(b, batch_b)
        solo = TenantRegistry().create("solo", _config())
        _feed(solo, batch_a)
        _assert_detections_identical(
            a.query().detections, solo.query().detections
        )
        assert b.engine.degraded and not a.engine.degraded


class TestDurability:
    def test_restore_all_rebuilds_fleet_with_state(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("merit", _config(workers=2))
        _feed(tenant, _capture(3))
        before = tenant.query()
        registry.snapshot_all()

        revived = TenantRegistry(tmp_path / "snap")
        assert revived.restore_all() == ["merit"]
        after = revived.get("merit")
        assert after.config == tenant.config
        assert after.engine.packets_seen == tenant.engine.packets_seen
        _assert_detections_identical(
            after.query().detections, before.detections
        )

    def test_restore_without_snapshot_starts_empty(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        registry.create("fresh", _config())
        # No snapshot_all: only the registry file exists.
        revived = TenantRegistry(tmp_path / "snap")
        assert revived.restore_all() == ["fresh"]
        assert revived.get("fresh").engine.packets_seen == 0

    def test_corrupt_registry_ignored(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        registry.create("t", _config())
        registry.registry_path().write_text("{not json")
        assert TenantRegistry(tmp_path / "snap").restore_all() == []

    def test_corrupt_snapshot_restarts_tenant_empty(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        _feed(tenant, _capture(4, n=2_000))
        registry.snapshot_all()
        ckpt = next((tmp_path / "snap" / "t").glob("engine-*.ckpt"))
        raw = bytearray(ckpt.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.write_bytes(bytes(raw))
        revived = TenantRegistry(tmp_path / "snap")
        revived.restore_all()
        after = revived.get("t")
        assert after.engine.packets_seen == 0
        assert after.telemetry.health.checkpoint_corrupt == 1


class TestRecycle:
    def test_recycle_preserves_results(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        steady = registry.create("steady", _config(workers=2))
        churned = registry.create("churned", _config(workers=2))
        chunks = list(_capture(5).iter_time_chunks(3_600.0))
        for i, (_, _, chunk) in enumerate(chunks):
            steady.ingest(chunk)
            churned.ingest(chunk)
            if i % 10 == 0:
                churned.recycle()
        assert churned.recycles > 0
        _assert_detections_identical(
            churned.query().detections, steady.query().detections
        )

    def test_recycle_counts_errors_independently(self):
        registry = TenantRegistry()
        tenant = registry.create("t", _config())
        for i in range(40):
            tenant.record_error(f"e{i}")
        assert len(tenant.errors) == 32
        assert tenant.errors[-1] == "e39"
