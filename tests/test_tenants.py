"""Tests for the tenant layer (repro.serve.tenants)."""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.io.packetlog import packets_to_npz_bytes
from repro.packet import PacketBatch, Protocol
from repro.serve.journal import JOURNAL_DIR_NAME
from repro.serve.tenants import TenantConfig, TenantRegistry
from tests.test_streaming import _assert_detections_identical

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)


def _config(**overrides) -> TenantConfig:
    base = dict(
        timeout=600.0,
        dark_size=_DARK_SIZE,
        detection=_CONFIG,
        snapshot_every_chunks=None,
    )
    base.update(overrides)
    return TenantConfig(**base)


def _capture(seed, n=8_000, duration=200_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 150, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


def _feed(tenant, batch, chunk_seconds=3_600.0):
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        tenant.ingest(chunk)


class TestConfigRoundTrip:
    def test_as_dict_from_dict(self):
        config = _config(workers=3, max_ecdf_samples=128, queue_depth=4)
        assert TenantConfig.from_dict(config.as_dict()) == config

    def test_detection_none_round_trips(self):
        config = _config(detection=None)
        restored = TenantConfig.from_dict(config.as_dict())
        assert restored.detection is None

    def test_coalesce_budgets_round_trip(self):
        config = _config(coalesce_chunks=5, coalesce_bytes=1_234_567)
        restored = TenantConfig.from_dict(config.as_dict())
        assert restored == config
        assert restored.coalesce_chunks == 5
        assert restored.coalesce_bytes == 1_234_567

    def test_legacy_dict_without_coalesce_keys_gets_defaults(self):
        # Registries persisted before micro-batching lack these keys.
        payload = _config().as_dict()
        del payload["coalesce_chunks"]
        del payload["coalesce_bytes"]
        restored = TenantConfig.from_dict(payload)
        assert restored.coalesce_chunks == 32
        assert restored.coalesce_bytes == 8 * 2**20


class TestRegistry:
    def test_create_get_remove(self):
        registry = TenantRegistry()
        tenant = registry.create("merit", _config())
        assert registry.get("merit") is tenant
        assert "merit" in registry
        assert registry.ids() == ["merit"]
        assert registry.remove("merit")
        assert registry.get("merit") is None
        assert not registry.remove("merit")

    def test_recreate_same_config_is_idempotent(self):
        registry = TenantRegistry()
        a = registry.create("t", _config())
        b = registry.create("t", _config())
        assert a is b

    def test_recreate_different_config_raises(self):
        registry = TenantRegistry()
        registry.create("t", _config())
        with pytest.raises(ValueError, match="different configuration"):
            registry.create("t", _config(workers=2))

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden"])
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid tenant id"):
            TenantRegistry().create(bad, _config())

    def test_isolation(self):
        # Two tenants fed different traffic never see each other's
        # sources — and their AH sets equal single-tenant runs.
        registry = TenantRegistry()
        a = registry.create("a", _config())
        b = registry.create("b", _config(max_ecdf_samples=16))
        batch_a, batch_b = _capture(1), _capture(2)
        _feed(a, batch_a)
        _feed(b, batch_b)
        solo = TenantRegistry().create("solo", _config())
        _feed(solo, batch_a)
        _assert_detections_identical(
            a.query().detections, solo.query().detections
        )
        assert b.engine.degraded and not a.engine.degraded


class TestDurability:
    def test_restore_all_rebuilds_fleet_with_state(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("merit", _config(workers=2))
        _feed(tenant, _capture(3))
        before = tenant.query()
        registry.snapshot_all()

        revived = TenantRegistry(tmp_path / "snap")
        assert revived.restore_all() == ["merit"]
        after = revived.get("merit")
        assert after.config == tenant.config
        assert after.engine.packets_seen == tenant.engine.packets_seen
        _assert_detections_identical(
            after.query().detections, before.detections
        )

    def test_restore_without_snapshot_starts_empty(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        registry.create("fresh", _config())
        # No snapshot_all: only the registry file exists.
        revived = TenantRegistry(tmp_path / "snap")
        assert revived.restore_all() == ["fresh"]
        assert revived.get("fresh").engine.packets_seen == 0

    def test_corrupt_registry_ignored(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        registry.create("t", _config())
        registry.registry_path().write_text("{not json")
        assert TenantRegistry(tmp_path / "snap").restore_all() == []

    def test_corrupt_snapshot_restarts_tenant_empty(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        _feed(tenant, _capture(4, n=2_000))
        registry.snapshot_all()
        ckpt = next((tmp_path / "snap" / "t").glob("engine-*.ckpt"))
        raw = bytearray(ckpt.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.write_bytes(bytes(raw))
        revived = TenantRegistry(tmp_path / "snap")
        revived.restore_all()
        after = revived.get("t")
        assert after.engine.packets_seen == 0
        assert after.telemetry.health.checkpoint_corrupt == 1


def _wire_chunks(batch, chunk_seconds=3_600.0):
    """The capture as npz wire payloads, like a client would POST."""
    return [
        packets_to_npz_bytes(chunk)
        for _, _, chunk in batch.iter_time_chunks(chunk_seconds)
    ]


def _serve_feed(tenant, payloads):
    """Feed payloads through the durable serve path (journal + fold)."""
    for payload in payloads:
        seq, duplicate = tenant.accept_chunk(payload)
        if not duplicate:
            tenant.ingest_payloads([payload], last_seq=seq)


class TestJournalDurability:
    """restore_all reconciles snapshots against the journal tail."""

    def test_journal_replay_without_any_snapshot(self, tmp_path):
        # The acked-chunk contract with no snapshot at all: the whole
        # journal replays and the state equals a serial feed.
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        batch = _capture(21)
        _serve_feed(tenant, _wire_chunks(batch))
        before = tenant.query()
        assert tenant.engine.last_seq == len(_wire_chunks(batch))
        # No snapshot_all(), no close: simulate a SIGKILL.

        revived = TenantRegistry(tmp_path / "snap")
        assert revived.restore_all() == ["t"]
        after = revived.get("t")
        assert after.engine.packets_seen == len(batch)
        assert after.serve_stats.replayed_chunks > 0
        _assert_detections_identical(
            after.query().detections, before.detections
        )

    def test_journal_replays_only_uncovered_suffix(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        payloads = _wire_chunks(_capture(22))
        half = len(payloads) // 2
        _serve_feed(tenant, payloads[:half])
        tenant.save_snapshot()  # covers (and truncates) the prefix
        _serve_feed(tenant, payloads[half:])
        expected = tenant.query()

        revived = TenantRegistry(tmp_path / "snap")
        revived.restore_all()
        after = revived.get("t")
        # Only the unsnapshotted suffix was re-folded.
        assert after.serve_stats.replayed_chunks == len(payloads) - half
        _assert_detections_identical(
            after.query().detections, expected.detections
        )

    def test_truncated_journal_tail_keeps_intact_prefix(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        payloads = _wire_chunks(_capture(23))
        _serve_feed(tenant, payloads)
        segments = sorted(
            (tmp_path / "snap" / "t" / JOURNAL_DIR_NAME).glob("*.wal")
        )
        # Tear the final record in half, as a crash mid-write would.
        last = segments[-1]
        raw = last.read_bytes()
        last.write_bytes(raw[: len(raw) - 10])

        revived = TenantRegistry(tmp_path / "snap")
        revived.restore_all()
        after = revived.get("t")
        # Every chunk but the torn one replayed; the damage is
        # quarantined on this tenant's health, not raised.
        assert after.serve_stats.replayed_chunks == len(payloads) - 1
        assert any(
            str(last) in q
            for q in after.telemetry.health.quarantined_chunks
        )

    def test_duplicate_records_replay_once(self, tmp_path):
        # A client that never saw its ack may get the same chunk
        # journaled twice (e.g. after the dedup LRU aged it out);
        # replay must fold it exactly once.
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        batch = _capture(24)
        payloads = _wire_chunks(batch)
        for payload in payloads:
            tenant.journal.append(payload)  # journal only — no folds
        tenant.journal.append(payloads[-1])  # the retransmit

        revived = TenantRegistry(tmp_path / "snap")
        revived.restore_all()
        after = revived.get("t")
        assert after.engine.packets_seen == len(batch)
        assert after.serve_stats.replayed_chunks == len(payloads)
        solo = TenantRegistry().create("solo", _config())
        _feed(solo, batch)
        _assert_detections_identical(
            after.query().detections, solo.query().detections
        )

    def test_corrupt_segment_isolated_from_sibling_tenants(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        broken = registry.create("broken", _config())
        clean = registry.create("clean", _config())
        batch = _capture(25)
        payloads = _wire_chunks(batch)
        _serve_feed(broken, payloads)
        _serve_feed(clean, payloads)
        segment = next(
            (tmp_path / "snap" / "broken" / JOURNAL_DIR_NAME).glob("*.wal")
        )
        segment.write_bytes(b"not a journal segment at all")

        revived = TenantRegistry(tmp_path / "snap")
        assert sorted(revived.restore_all()) == ["broken", "clean"]
        assert revived.get("clean").engine.packets_seen == len(batch)
        assert revived.get("broken").engine.packets_seen == 0
        assert (
            revived.get("broken").telemetry.health.quarantined_chunks != []
        )
        assert (
            revived.get("clean").telemetry.health.quarantined_chunks == []
        )

    def test_replay_then_retransmit_is_deduplicated(self, tmp_path):
        # After a restart the server re-acks retransmits of replayed
        # chunks without folding them again.
        registry = TenantRegistry(tmp_path / "snap")
        tenant = registry.create("t", _config())
        payloads = _wire_chunks(_capture(26))
        _serve_feed(tenant, payloads)

        revived = TenantRegistry(tmp_path / "snap")
        revived.restore_all()
        after = revived.get("t")
        packets = after.engine.packets_seen
        seq, duplicate = after.accept_chunk(payloads[-1])
        assert duplicate
        assert after.engine.packets_seen == packets
        assert after.serve_stats.duplicate_chunks == 1

    def test_fresh_create_resets_stale_journal(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        old = registry.create("t", _config())
        _serve_feed(old, _wire_chunks(_capture(27)))
        registry.remove("t")
        # Same id, fresh tenant: the old segments must not replay.
        again = TenantRegistry(tmp_path / "snap")
        tenant = again.create("t", _config())
        assert tenant.engine.packets_seen == 0
        assert list(tenant.journal.replay()) == []

    def test_journal_disabled_keeps_old_semantics(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap", journal=False)
        tenant = registry.create("t", _config())
        assert tenant.journal is None
        payload = _wire_chunks(_capture(28))[0]
        seq, duplicate = tenant.accept_chunk(payload)
        assert seq is None and not duplicate
        # Unsnapshotted state really is lost — that is the trade-off
        # --no-journal buys.
        tenant.ingest_payloads([payload])
        revived = TenantRegistry(tmp_path / "snap", journal=False)
        revived.restore_all()
        assert revived.get("t").engine.packets_seen == 0


class TestRecycle:
    def test_recycle_preserves_results(self, tmp_path):
        registry = TenantRegistry(tmp_path / "snap")
        steady = registry.create("steady", _config(workers=2))
        churned = registry.create("churned", _config(workers=2))
        chunks = list(_capture(5).iter_time_chunks(3_600.0))
        for i, (_, _, chunk) in enumerate(chunks):
            steady.ingest(chunk)
            churned.ingest(chunk)
            if i % 10 == 0:
                churned.recycle()
        assert churned.recycles > 0
        _assert_detections_identical(
            churned.query().detections, steady.query().detections
        )

    def test_recycle_counts_errors_independently(self):
        registry = TenantRegistry()
        tenant = registry.create("t", _config())
        for i in range(40):
            tenant.record_error(f"e{i}")
        assert len(tenant.errors) == 32
        assert tenant.errors[-1] == "e39"
