"""Tests for the blocklist publishing / subscription format."""

import pytest

from repro.core.lists import BlocklistEntry, DailyBlocklist
from repro.io.listio import (
    BlocklistDiff,
    diff_blocklists,
    expire_merged,
    load_blocklist,
    merge_blocklists,
    save_blocklist,
)


def entry(address, packets=10, defs=(1,), acked=False):
    return BlocklistEntry(
        address=address,
        definitions=tuple(defs),
        packets=packets,
        asn=64_512,
        country="US",
        acknowledged=acked,
    )


def blocklist(day, addresses):
    return DailyBlocklist(day=day, entries=[entry(a) for a in addresses])


class TestRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        original = DailyBlocklist(
            day=5,
            entries=[
                entry(167_772_161, packets=99, defs=(1, 2)),
                entry(167_772_162, packets=5, defs=(3,), acked=True),
            ],
        )
        path = tmp_path / "list.csv"
        save_blocklist(original, path)
        loaded = load_blocklist(path)
        assert loaded.day == 5
        assert len(loaded) == 2
        assert loaded.entries[0].address == 167_772_161
        assert loaded.entries[0].definitions == (1, 2)
        assert loaded.entries[1].acknowledged is True

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_blocklist(DailyBlocklist(day=0), path)
        assert len(load_blocklist(path)) == 0

    def test_missing_day_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ip,definitions\n")
        with pytest.raises(ValueError):
            load_blocklist(path)

    def test_bad_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# day=0\nfoo,bar\n")
        with pytest.raises(ValueError):
            load_blocklist(path)

    def test_scenario_blocklist_roundtrip(self, tiny_report, tmp_path):
        original = tiny_report.daily_blocklist(1)
        path = tmp_path / "day1.csv"
        save_blocklist(original, path)
        loaded = load_blocklist(path)
        assert loaded.addresses() == original.addresses()
        assert [e.packets for e in loaded.entries] == [
            e.packets for e in original.entries
        ]


class TestDiff:
    def test_delta(self):
        old = blocklist(0, [1, 2, 3])
        new = blocklist(1, [2, 3, 4, 5])
        diff = diff_blocklists(old, new)
        assert diff.added == (4, 5)
        assert diff.removed == (1,)
        assert diff.retained == (2, 3)
        assert diff.churn == pytest.approx(3 / 5)

    def test_no_change(self):
        same = blocklist(0, [7])
        diff = diff_blocklists(same, blocklist(1, [7]))
        assert diff.churn == 0.0

    def test_empty_lists(self):
        diff = diff_blocklists(blocklist(0, []), blocklist(1, []))
        assert diff.churn == 0.0
        assert diff.added == ()


class TestMerge:
    def test_last_seen_wins(self):
        merged = merge_blocklists(
            [blocklist(0, [1, 2]), blocklist(2, [2, 3])]
        )
        assert merged == {1: 0, 2: 2, 3: 2}

    def test_order_independent(self):
        a = [blocklist(0, [1]), blocklist(3, [1])]
        assert merge_blocklists(a) == merge_blocklists(list(reversed(a)))

    def test_expire(self):
        merged = {1: 0, 2: 2, 3: 4}
        kept = expire_merged(merged, current_day=4, window_days=3)
        assert kept == {2: 2, 3: 4}

    def test_expire_validation(self):
        with pytest.raises(ValueError):
            expire_merged({}, 0, 0)
