"""Unit tests for the scanner archetype builders."""

import numpy as np

from repro.net.prefix import Prefix, PrefixSet
from repro.scanners import background, masscan, mirai, omniscanner, research
from repro.scanners.base import ScanMode, View

DURATION = 14 * 86_400.0


def sources(n, start=1_000_000):
    return np.arange(start, start + n, dtype=np.uint32)


def dark_view():
    return View(name="dark", prefixes=PrefixSet([Prefix.parse("10.0.0.0/19")]))


class TestSweepers:
    def test_build_shapes(self, rng):
        scanners = masscan.build_sweepers(rng, sources(20), DURATION)
        assert len(scanners) == 20
        for s in scanners:
            assert s.behavior == "masscan-sweep"
            assert s.org is None
            assert len(s.sessions) >= 1
            for session in s.sessions:
                assert session.mode is ScanMode.COVERAGE
                assert 0.05 <= session.coverage <= 1.0
                assert 0 <= session.start < DURATION

    def test_unique_seeds(self, rng):
        scanners = masscan.build_sweepers(rng, sources(10), DURATION, seed_base=50)
        assert len({s.seed for s in scanners}) == 10

    def test_coverage_bounds_respected(self, rng):
        scanners = masscan.build_sweepers(
            rng, sources(30), DURATION, coverage_low=0.2, coverage_high=0.3
        )
        for s in scanners:
            for session in s.sessions:
                assert 0.2 <= session.coverage <= 0.3

    def test_many_reach_dispersion_threshold(self, rng):
        scanners = masscan.build_sweepers(rng, sources(30), DURATION)
        view = dark_view()
        qualified = 0
        for s in scanners:
            batch = s.emit(view)
            if len(batch) and len(np.unique(batch.dst)) >= 0.1 * view.size:
                qualified += 1
        assert qualified > 10


class TestMirai:
    def test_aggressive_bots_qualify(self, rng):
        bots = mirai.build_aggressive_bots(rng, sources(10), DURATION)
        view = dark_view()
        hit_rates = []
        for bot in bots:
            batch = bot.emit(view)
            hit_rates.append(len(np.unique(batch.dst)) / view.size)
        assert np.median(hit_rates) >= 0.1

    def test_ports_telnet_heavy(self, rng):
        bots = mirai.build_aggressive_bots(rng, sources(5), DURATION)
        batch = bots[0].emit(dark_view())
        telnet_share = np.mean(batch.dport == 23)
        assert telnet_share > 0.8
        assert set(np.unique(batch.dport)) <= {23, 2323}

    def test_small_bots_stay_small(self, rng):
        bots = mirai.build_small_bots(rng, sources(20), DURATION)
        view = dark_view()
        for bot in bots:
            batch = bot.emit(view)
            assert len(np.unique(batch.dst)) < 0.1 * view.size

    def test_behavior_labels(self, rng):
        assert mirai.build_aggressive_bots(rng, sources(1), DURATION)[0].behavior == "mirai"
        assert mirai.build_small_bots(rng, sources(1), DURATION)[0].behavior == "mirai-small"

    def test_single_session_lifetime(self, rng):
        bots = mirai.build_aggressive_bots(rng, sources(5), DURATION)
        for bot in bots:
            assert len(bot.sessions) == 1
            assert bot.sessions[0].mode is ScanMode.RATE


class TestOmniscanner:
    def test_port_set_sizes(self, rng):
        scanners = omniscanner.build_omniscanners(
            rng, sources(5), DURATION, port_count_low=500, port_count_high=900
        )
        for s in scanners:
            vertical = [x for x in s.sessions if x.mode is ScanMode.VERTICAL]
            assert vertical
            for session in vertical:
                assert 500 <= len(session.ports) <= 900
                assert len(np.unique(session.ports)) == len(session.ports)

    def test_sessions_fit_days(self, rng):
        scanners = omniscanner.build_omniscanners(
            rng, sources(5), DURATION, port_count_low=100, port_count_high=200
        )
        for s in scanners:
            for session in s.sessions:
                assert session.end <= DURATION + 86_400.0

    def test_multiport_smaller(self, rng):
        scanners = omniscanner.build_multiport_scanners(rng, sources(10), DURATION)
        for s in scanners:
            assert 5 <= len(s.sessions[0].ports) <= 400
            assert s.behavior == "multiport"


class TestBackground:
    def test_small_scanners_below_dispersion(self, rng):
        scanners = background.build_small_scanners(rng, sources(50), DURATION)
        view = dark_view()
        for s in scanners[:20]:
            batch = s.emit(view)
            assert len(np.unique(batch.dst)) < 0.1 * view.size

    def test_small_scanners_one_session(self, rng):
        scanners = background.build_small_scanners(rng, sources(5), DURATION)
        for s in scanners:
            assert len(s.sessions) == 1
            assert s.behavior == "small-scan"

    def test_misconfig_targets_dark_space(self, rng):
        view = dark_view()
        scanners = background.build_misconfigured_hosts(
            rng, sources(30), DURATION, view.ranges()
        )
        for s in scanners[:10]:
            batch = s.emit(view)
            if len(batch):
                # All packets go to a single dark destination.
                assert len(np.unique(batch.dst)) == 1
                assert view.prefixes.contains_array(batch.dst).all()

    def test_misconfig_invisible_elsewhere(self, rng):
        dark = dark_view()
        other = View(name="other", prefixes=PrefixSet([Prefix.parse("172.16.0.0/16")]))
        scanners = background.build_misconfigured_hosts(
            rng, sources(10), DURATION, dark.ranges()
        )
        for s in scanners:
            assert len(s.emit(other)) == 0


class TestResearch:
    def test_org_recorded(self, rng):
        scanners = research.build_org_scanners(
            rng, "netcensus", sources(10), DURATION
        )
        assert all(s.org == "netcensus" for s in scanners)
        assert all(s.behavior == "research" for s in scanners)

    def test_recurring_sessions(self, rng):
        scanners = research.build_org_scanners(
            rng, "o", sources(20), DURATION, vertical_fraction=0.0
        )
        session_counts = [len(s.sessions) for s in scanners]
        # 14-day scenario with 2-6 day cadence: at least 2 surveys each.
        assert min(session_counts) >= 2

    def test_vertical_fraction_one(self, rng):
        scanners = research.build_org_scanners(
            rng, "o", sources(5), DURATION, vertical_fraction=1.0
        )
        for s in scanners:
            assert all(x.mode is ScanMode.VERTICAL for x in s.sessions)

    def test_moderate_stays_below_threshold(self, rng):
        scanners = research.build_moderate_org_scanners(
            rng, "o", sources(10), DURATION
        )
        view = dark_view()
        for s in scanners:
            batch = s.emit(view)
            assert len(np.unique(batch.dst)) < 0.1 * view.size
            assert s.behavior == "research-moderate"

    def test_zmap_tool_dominant(self, rng):
        scanners = research.build_org_scanners(rng, "o", sources(10), DURATION)
        from repro.fingerprint import Tool

        tools = {sess.tool for s in scanners for sess in s.sessions}
        assert tools == {Tool.ZMAP}
