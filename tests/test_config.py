"""Unit tests for paper parameters and the timeout rule."""

import math

import pytest

from repro.config import (
    DetectionConfig,
    EventConfig,
    StudyConfig,
    event_timeout_seconds,
)


class TestTimeoutRule:
    def test_paper_scale_is_about_ten_minutes(self):
        # ORION: 475k dark IPs, 100 pps, 2-day long scan -> the paper
        # says "around 10 minutes"; the rule yields ~16 minutes.
        timeout = event_timeout_seconds(475_000)
        assert 300 < timeout < 1_800

    def test_smaller_telescope_longer_timeout(self):
        assert event_timeout_seconds(8_192) > event_timeout_seconds(475_000)

    def test_scales_inverse_with_rate(self):
        slow = event_timeout_seconds(475_000, assumed_rate_pps=50)
        fast = event_timeout_seconds(475_000, assumed_rate_pps=200)
        assert slow > fast

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            event_timeout_seconds(0)
        with pytest.raises(ValueError):
            event_timeout_seconds(1_000, split_probability=0.0)
        with pytest.raises(ValueError):
            event_timeout_seconds(1_000, split_probability=1.0)

    def test_split_probability_monotone(self):
        strict = event_timeout_seconds(475_000, split_probability=0.01)
        loose = event_timeout_seconds(475_000, split_probability=0.5)
        assert strict > loose

    def test_formula(self):
        lam = 100 * 8_192 / 2**32
        n = lam * 2 * 86_400
        expected = math.log(n / 0.05) / lam
        assert event_timeout_seconds(8_192) == pytest.approx(expected)


class TestConfigs:
    def test_detection_defaults_match_paper(self):
        config = DetectionConfig()
        assert config.dispersion_fraction == 0.10
        assert config.alpha == 1e-4

    def test_detection_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(dispersion_fraction=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(dispersion_fraction=1.5)
        with pytest.raises(ValueError):
            DetectionConfig(alpha=0.0)

    def test_event_config_explicit_timeout(self):
        assert EventConfig(timeout_seconds=600.0).resolve_timeout(1) == 600.0

    def test_event_config_derived_timeout(self):
        config = EventConfig()
        assert config.resolve_timeout(475_000) == pytest.approx(
            event_timeout_seconds(475_000)
        )

    def test_event_config_invalid(self):
        with pytest.raises(ValueError):
            EventConfig(timeout_seconds=-5.0).resolve_timeout(100)

    def test_study_config_sampling(self):
        assert StudyConfig().flow_sampling_rate == 1_000
        with pytest.raises(ValueError):
            StudyConfig(flow_sampling_rate=0)
