"""Merge operations in isolation: the substrate of shard-parallel runs.

The parallel path (repro.parallel) is only correct if every piece of
detector state merges exactly: the StreamingECDF sample, the running
dispersion set, the port-day triple runs, and the event builder's open
flows.  These tests pin associativity/commutativity where the merge
tree shape must not matter, and the guard rails (mismatched
configurations, overlapping shards) that keep a bad merge loud.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.core.ecdf import ECDF, StreamingECDF
from repro.core.events import build_events
from repro.core.streaming import (
    DispersionState,
    PortDayState,
    StreamingDetector,
    StreamingEventBuilder,
    tables_equivalent,
)
from repro.packet import Protocol
from tests.test_events import _packets

TCP = Protocol.TCP_SYN.value

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=40,
)


def _ecdf_of(values_lists):
    out = StreamingECDF()
    for values in values_lists:
        out.add(np.asarray(values, dtype=np.float64))
    return out


class TestStreamingECDFMerge:
    def test_merge_equals_batch(self):
        a = _ecdf_of([[1.0, 5.0], [2.0]])
        b = _ecdf_of([[4.0, 0.5]])
        a.merge(b)
        batch = ECDF(np.array([1.0, 5.0, 2.0, 4.0, 0.5]))
        assert np.array_equal(a.ecdf().values, batch.values)
        assert len(a) == 5

    def test_merge_empty_is_identity(self):
        a = _ecdf_of([[3.0, 1.0]])
        a.merge(StreamingECDF())
        assert np.array_equal(a.ecdf().values, np.array([1.0, 3.0]))

    def test_merge_self_rejected(self):
        a = _ecdf_of([[1.0]])
        with pytest.raises(ValueError):
            a.merge(a)

    def test_merge_does_not_mutate_other(self):
        a = _ecdf_of([[1.0]])
        b = _ecdf_of([[2.0]])
        a.merge(b)
        assert np.array_equal(b.ecdf().values, np.array([2.0]))

    @given(samples, samples)
    @settings(max_examples=40)
    def test_commutative(self, xs, ys):
        ab = _ecdf_of([xs])
        ab.merge(_ecdf_of([ys]))
        ba = _ecdf_of([ys])
        ba.merge(_ecdf_of([xs]))
        assert len(ab) == len(ba)
        if len(ab):
            assert np.array_equal(ab.ecdf().values, ba.ecdf().values)

    @given(samples, samples, samples)
    @settings(max_examples=40)
    def test_associative(self, xs, ys, zs):
        left = _ecdf_of([xs])
        left_inner = _ecdf_of([ys])
        left.merge(left_inner)
        left.merge(_ecdf_of([zs]))

        right_inner = _ecdf_of([ys])
        right_inner.merge(_ecdf_of([zs]))
        right = _ecdf_of([xs])
        right.merge(right_inner)

        assert len(left) == len(right)
        if len(left):
            assert np.array_equal(left.ecdf().values, right.ecdf().values)
            for q in (0.0, 0.25, 0.5, 0.9, 1.0):
                assert left.quantile(q) == right.quantile(q)


class TestDispersionStateMerge:
    def _events(self, rows):
        return build_events(_packets(rows), timeout=60.0)

    def test_union_of_qualifying_sources(self):
        a = DispersionState(threshold=2)
        a.update(self._events([(0, 1, 10, 80, TCP), (1, 1, 11, 80, TCP)]))
        b = DispersionState(threshold=2)
        b.update(self._events([(0, 2, 10, 80, TCP), (1, 2, 11, 80, TCP)]))
        b.update(self._events([(0, 3, 10, 80, TCP)]))  # 1 dst: no qualify
        a.merge(b)
        assert a.sources == {1, 2}
        assert len(a) == 2

    def test_threshold_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DispersionState(2).merge(DispersionState(3))

    def test_merge_is_idempotent_on_overlap(self):
        a = DispersionState(threshold=1)
        a.update(self._events([(0, 7, 10, 80, TCP)]))
        b = DispersionState(threshold=1)
        b.update(self._events([(0, 7, 10, 80, TCP)]))
        a.merge(b)
        assert a.sources == {7}


class TestPortDayStateMerge:
    def _events(self, rows):
        return build_events(_packets(rows), timeout=60.0)

    def test_overlapping_windows_counted_once(self):
        # The same (src=1, day=0, port=80) triple lands in both states —
        # e.g. a flow whose history was split across crafted overlapping
        # chunk windows.  The merged count must still be 1 per port.
        day = 86_400.0
        a = PortDayState(day)
        a.update(self._events([(0, 1, 10, 80, TCP)]))
        b = PortDayState(day)
        b.update(self._events([(100, 1, 11, 80, TCP), (100, 1, 11, 23, TCP)]))
        a.merge(b)
        assert a.counts() == {(1, 0): 2}  # ports 80 and 23, deduplicated

    def test_merge_matches_single_state(self):
        day = 86_400.0
        rows_a = [(0, 1, 10, 80, TCP), (90_000, 1, 10, 443, TCP)]
        rows_b = [(0, 2, 10, 22, TCP), (10, 2, 11, 23, TCP)]
        split_a, split_b = PortDayState(day), PortDayState(day)
        split_a.update(self._events(rows_a))
        split_b.update(self._events(rows_b))
        split_a.merge(split_b)
        combined = PortDayState(day)
        combined.update(self._events(rows_a))
        combined.update(self._events(rows_b))
        assert split_a.counts() == combined.counts()

    def test_day_seconds_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PortDayState(86_400.0).merge(PortDayState(3_600.0))

    def test_merge_self_rejected(self):
        state = PortDayState(86_400.0)
        with pytest.raises(ValueError):
            state.merge(state)

    def test_empty_states(self):
        a = PortDayState(86_400.0)
        a.merge(PortDayState(86_400.0))
        assert a.counts() == {}


class TestBuilderMerge:
    def test_disjoint_sources_union(self):
        a = StreamingEventBuilder(timeout=60.0)
        a.add_batch(_packets([(0, 1, 10, 80, TCP), (1_000, 1, 11, 80, TCP)]))
        b = StreamingEventBuilder(timeout=60.0)
        b.add_batch(_packets([(500, 2, 10, 80, TCP)]))
        a.merge(b)
        union = a.finish()
        reference = build_events(
            _packets(
                [
                    (0, 1, 10, 80, TCP),
                    (1_000, 1, 11, 80, TCP),
                    (500, 2, 10, 80, TCP),
                ]
            ),
            timeout=60.0,
        )
        assert tables_equivalent(union, reference)

    def test_overlapping_open_flow_rejected(self):
        a = StreamingEventBuilder(timeout=60.0)
        a.add_batch(_packets([(0, 1, 10, 80, TCP)]))
        b = StreamingEventBuilder(timeout=60.0)
        b.add_batch(_packets([(0, 1, 11, 80, TCP)]))
        with pytest.raises(ValueError, match="overlap"):
            a.merge(b)

    def test_timeout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StreamingEventBuilder(60.0).merge(StreamingEventBuilder(120.0))

    def test_gauges_aggregate(self):
        a = StreamingEventBuilder(timeout=60.0)
        a.add_batch(_packets([(0, 1, 10, 80, TCP)]))
        b = StreamingEventBuilder(timeout=60.0)
        b.add_batch(_packets([(10, 2, 10, 80, TCP), (10.5, 3, 10, 23, TCP)]))
        a.merge(b)
        assert a.open_flows == 3
        assert a.peak_open_flows == 3  # sum of shard peaks (1 + 2)
        assert a.watermark == 10.5


class TestDetectorMerge:
    def test_config_mismatch_rejected(self):
        a = StreamingDetector(600.0, 64, DetectionConfig(alpha=0.05))
        b = StreamingDetector(600.0, 64, DetectionConfig(alpha=0.01))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dark_size_mismatch_rejected(self):
        a = StreamingDetector(600.0, 64)
        b = StreamingDetector(600.0, 128)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_finished_detector_rejected(self):
        a = StreamingDetector(600.0, 64)
        b = StreamingDetector(600.0, 64)
        b.finish()
        with pytest.raises(RuntimeError):
            a.merge(b)
