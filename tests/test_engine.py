"""Tests for the long-lived detection engine (repro.core.engine).

The golden digests below were computed on the pre-engine code (PR 5):
the refactor must keep every run path bit-identical, so the event
table bytes and sorted AH sets of the tiny scenario are pinned as
hex literals for batch, serial streaming, and pooled runs alike.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.engine import (
    ENGINE_STATE_MAGIC,
    DetectionEngine,
    EngineQuery,
)
from repro.core.events import build_events
from repro.core.faults import CheckpointStore
from repro.core.telemetry import PipelineTelemetry
from repro.packet import PacketBatch, Protocol
from repro.sim.runner import run_scenario
from repro.sim.scenario import tiny_scenario
from tests.test_events import _packets
from tests.test_streaming import (
    _assert_detections_identical,
    _assert_tables_identical,
)

TCP = Protocol.TCP_SYN.value

_DARK_SIZE = 64
_CONFIG = DetectionConfig(
    alpha=0.05, min_packet_threshold=2, min_port_threshold=1
)

# ----------------------------------------------------------------------
# Golden digests of the tiny scenario, computed BEFORE the engine
# refactor.  Any change to these is a silent behaviour change in the
# detection pipeline and must be treated as a bug.
# ----------------------------------------------------------------------
GOLDEN_EVENT_DIGEST = "2def52305c91bf3d"
GOLDEN_DETECTIONS = {
    1: (75, "4fc555993086b60e", 204.8),
    2: (79, "fe618feb2cee584c", 100.0),
    3: (22, "25a1aca7feb9484c", 2.0),
}


def _events_digest(events) -> str:
    h = hashlib.sha256()
    for col in (
        "src", "dport", "proto", "start", "end", "packets", "unique_dsts"
    ):
        h.update(np.ascontiguousarray(getattr(events, col)).tobytes())
    return h.hexdigest()[:16]


def _sources_digest(sources) -> str:
    arr = np.sort(np.array(sorted(sources), dtype=np.uint64))
    return hashlib.sha256(arr.tobytes()).hexdigest()[:16]


def _assert_golden(events, detections):
    assert _events_digest(events) == GOLDEN_EVENT_DIGEST
    for definition, (count, digest, threshold) in GOLDEN_DETECTIONS.items():
        result = detections[definition]
        assert len(result.sources) == count
        assert _sources_digest(result.sources) == digest
        assert result.threshold == pytest.approx(threshold)


def _world():
    from repro.sim.runner import _build_world_base

    scenario = tiny_scenario()
    internet, telescope, population, merit, campus, timeout = (
        _build_world_base(scenario)
    )
    return scenario, telescope, population, timeout


def _engine_for(scenario, telescope, timeout, **kwargs):
    return DetectionEngine(
        timeout,
        telescope.size,
        scenario.detection,
        scenario.clock.seconds_per_day,
        **kwargs,
    )


def _chunks(scenario, telescope, population, chunk_seconds=3_600.0):
    return list(
        telescope.stream(
            population.scanners, chunk_seconds, window=scenario.window()
        )
    )


def _random_capture(seed, n=20_000, duration=400_000.0):
    rng = np.random.default_rng(seed)
    return PacketBatch(
        ts=np.sort(rng.random(n) * duration),
        src=rng.integers(1, 200, n).astype(np.uint32),
        dst=rng.integers(0, _DARK_SIZE, n).astype(np.uint32),
        dport=rng.choice(np.array([22, 23, 80, 443], dtype=np.uint16), n),
        proto=np.full(n, TCP, dtype=np.uint8),
        ipid=np.zeros(n, dtype=np.uint16),
    )


class TestGoldenRunPaths:
    """The run paths stay bit-identical to the pre-engine code."""

    def test_batch(self):
        result = run_scenario(tiny_scenario())
        _assert_golden(result.events, result.detections)

    def test_streaming_serial(self):
        result = run_scenario(tiny_scenario(), mode="streaming")
        _assert_golden(result.events, result.detections)

    def test_streaming_pool(self):
        result = run_scenario(
            tiny_scenario(), mode="streaming", workers=2
        )
        _assert_golden(result.events, result.detections)
        assert result.telemetry.workers == 2

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_engine_direct(self, workers):
        scenario, telescope, population, timeout = _world()
        engine = _engine_for(scenario, telescope, timeout, workers=workers)
        for chunk in _chunks(scenario, telescope, population):
            engine.ingest(chunk)
        events, detections = engine.finish()
        _assert_golden(events, detections)


class TestEngineLifecycle:
    def test_query_matches_offline_prefix(self):
        # A mid-stream query answers exactly what an offline run over
        # the traffic seen so far would.
        scenario, telescope, population, timeout = _world()
        chunks = _chunks(scenario, telescope, population)
        half = len(chunks) // 2
        engine = _engine_for(scenario, telescope, timeout, workers=2)
        for chunk in chunks[:half]:
            engine.ingest(chunk)
        query = engine.query()
        assert isinstance(query, EngineQuery)
        prefix = PacketBatch.concat([c.packets for c in chunks[:half]])
        ref_events = build_events(prefix, timeout)
        ref = detect_all(
            ref_events,
            telescope.size,
            scenario.detection,
            scenario.clock.seconds_per_day,
        )
        assert query.events == len(ref_events)
        _assert_detections_identical(query.detections, ref)

    def test_query_does_not_disturb_the_stream(self):
        scenario, telescope, population, timeout = _world()
        chunks = _chunks(scenario, telescope, population)
        quiet = _engine_for(scenario, telescope, timeout, workers=2)
        noisy = _engine_for(scenario, telescope, timeout, workers=2)
        for i, chunk in enumerate(chunks):
            quiet.ingest(chunk)
            noisy.ingest(chunk)
            if i % 7 == 0:
                noisy.query()
        ev_q, det_q = quiet.finish()
        ev_n, det_n = noisy.finish()
        _assert_tables_identical(ev_n, ev_q)
        _assert_detections_identical(det_n, det_q)

    def test_ingest_after_finish_raises(self):
        engine = DetectionEngine(600.0, _DARK_SIZE, _CONFIG)
        engine.finish()
        with pytest.raises(RuntimeError, match="finished"):
            engine.ingest(_random_capture(1, n=10))
        with pytest.raises(RuntimeError, match="finished"):
            engine.finish()

    def test_empty_engine_query_and_finish(self):
        engine = DetectionEngine(600.0, _DARK_SIZE, _CONFIG)
        query = engine.query()
        assert query.packets == 0
        assert query.ah_sources(1) == set()
        events, detections = engine.finish()
        assert len(events) == 0
        assert all(not r.sources for r in detections.values())

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match=">= 1"):
            DetectionEngine(600.0, _DARK_SIZE, workers=0)

    def test_telemetry_matches_serial_path(self):
        # The engine records the same chunk/stage gauges the serial
        # streaming loop used to.
        batch = _random_capture(7, n=8_000)
        telemetry = PipelineTelemetry(chunk_seconds=3_600.0)
        engine = DetectionEngine(
            600.0, _DARK_SIZE, _CONFIG, telemetry=telemetry
        )
        for _, _, chunk in batch.iter_time_chunks(3_600.0):
            engine.ingest(chunk)
        events, _ = engine.finish()
        assert telemetry.total_packets == len(batch)
        assert telemetry.total_events == len(events)
        assert telemetry.final_open_flows == 0
        assert "detect" in telemetry.stages


class TestSnapshotRestore:
    def test_continuation_is_bit_identical(self):
        scenario, telescope, population, timeout = _world()
        chunks = _chunks(scenario, telescope, population)
        half = len(chunks) // 2
        engine = _engine_for(scenario, telescope, timeout, workers=2)
        for chunk in chunks[:half]:
            engine.ingest(chunk)
        restored = DetectionEngine.restore(engine.snapshot())
        assert restored.workers == engine.workers
        assert restored.chunks_ingested == engine.chunks_ingested
        for chunk in chunks[half:]:
            engine.ingest(chunk)
            restored.ingest(chunk)
        ev_a, det_a = engine.finish()
        ev_b, det_b = restored.finish()
        _assert_tables_identical(ev_b, ev_a)
        _assert_detections_identical(det_b, det_a)
        _assert_golden(ev_b, det_b)

    def test_version_mismatch_rejected(self):
        engine = DetectionEngine(600.0, _DARK_SIZE, _CONFIG)
        blob = engine.snapshot()
        assert blob.startswith(ENGINE_STATE_MAGIC)
        with pytest.raises(ValueError, match="header"):
            DetectionEngine.restore(b"repro-engine-state-v0\n" + blob)
        with pytest.raises(ValueError, match="header"):
            DetectionEngine.restore(b"garbage")

    def test_scheduled_snapshots_through_store(self, tmp_path):
        telemetry = PipelineTelemetry()
        store = CheckpointStore(tmp_path / "snap", health=telemetry.health)
        engine = DetectionEngine(
            600.0,
            _DARK_SIZE,
            _CONFIG,
            telemetry=telemetry,
            store=store,
            snapshot_every_chunks=2,
        )
        batch = _random_capture(11, n=6_000)
        chunks = [c for _, _, c in batch.iter_time_chunks(3_600.0)]
        for chunk in chunks:
            engine.ingest(chunk)
        assert telemetry.health.checkpoint_writes == len(chunks) // 2
        revived = DetectionEngine.from_store(store)
        assert revived is not None
        assert revived.packets_seen == engine.packets_seen

    def test_from_store_empty_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "empty")
        assert DetectionEngine.from_store(store) is None

    def test_corrupt_snapshot_treated_as_absent(self, tmp_path):
        telemetry = PipelineTelemetry()
        store = CheckpointStore(tmp_path / "snap", health=telemetry.health)
        engine = DetectionEngine(600.0, _DARK_SIZE, _CONFIG, store=store)
        engine.ingest(_random_capture(12, n=500))
        path = engine.save_snapshot()
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert DetectionEngine.from_store(store) is None
        assert telemetry.health.checkpoint_corrupt == 1


class TestMemoryBudget:
    def test_budget_bounds_samples_and_flags_degraded(self):
        batch = _random_capture(21)
        exact = DetectionEngine(600.0, _DARK_SIZE, _CONFIG)
        bounded = DetectionEngine(
            600.0, _DARK_SIZE, _CONFIG, max_ecdf_samples=64
        )
        for _, _, chunk in batch.iter_time_chunks(3_600.0):
            exact.ingest(chunk)
            bounded.ingest(chunk)
        assert not exact.degraded
        assert bounded.degraded
        ev_e, det_e = exact.finish()
        ev_b, det_b = bounded.finish()
        # Events and the non-ECDF definitions are untouched by the
        # budget; only the Definition-2 threshold may drift, and only
        # within the compaction's rank bound.
        _assert_tables_identical(ev_b, ev_e)
        assert det_b[1].sources == det_e[1].sources
        assert det_b[3].sources == det_e[3].sources
        exact_t = det_e[2].threshold
        assert det_b[2].threshold == pytest.approx(exact_t, rel=0.25)

    def test_budget_is_deterministic(self):
        batch = _random_capture(22, n=10_000)

        def run():
            engine = DetectionEngine(
                600.0, _DARK_SIZE, _CONFIG, max_ecdf_samples=32
            )
            for _, _, chunk in batch.iter_time_chunks(3_600.0):
                engine.ingest(chunk)
            return engine.finish()

        ev_a, det_a = run()
        ev_b, det_b = run()
        _assert_tables_identical(ev_b, ev_a)
        _assert_detections_identical(det_b, det_a)

    def test_under_budget_stays_exact(self):
        batch = _random_capture(23, n=2_000)
        exact = DetectionEngine(600.0, _DARK_SIZE, _CONFIG)
        bounded = DetectionEngine(
            600.0, _DARK_SIZE, _CONFIG, max_ecdf_samples=10_000_000
        )
        for _, _, chunk in batch.iter_time_chunks(3_600.0):
            exact.ingest(chunk)
            bounded.ingest(chunk)
        assert not bounded.degraded
        _, det_e = exact.finish()
        _, det_b = bounded.finish()
        _assert_detections_identical(det_b, det_e)

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="max_ecdf_samples"):
            DetectionEngine(600.0, _DARK_SIZE, max_ecdf_samples=1)


# ----------------------------------------------------------------------
# Property: for any worker count and chunking, the engine's finish
# equals batch detect_all over the concatenated capture.
# ----------------------------------------------------------------------

packet_rows = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5_000, allow_nan=False),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=20),
        st.sampled_from([22, 23, 80]),
    ),
    min_size=1,
    max_size=120,
)


@given(
    packet_rows,
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=50.0, max_value=6_000.0),
)
@settings(max_examples=40, deadline=None)
def test_engine_equals_batch(rows, workers, chunk_seconds):
    batch = _packets([(ts, s, d, p, TCP) for ts, s, d, p in rows])
    ref_events = build_events(batch, 600.0)
    ref = detect_all(ref_events, _DARK_SIZE, _CONFIG)
    engine = DetectionEngine(600.0, _DARK_SIZE, _CONFIG, workers=workers)
    for _, _, chunk in batch.iter_time_chunks(chunk_seconds):
        engine.ingest(chunk)
    events, detections = engine.finish()
    _assert_tables_identical(events, ref_events.sorted_canonical())
    _assert_detections_identical(detections, ref)
