"""Unit tests for the synthetic reverse DNS store."""

import numpy as np
import pytest

from repro.net.rdns import ReverseDNS


class TestReverseDNS:
    def test_register_and_resolve(self):
        rdns = ReverseDNS()
        rdns.register(167_772_161, "host.example")
        assert rdns.resolve(167_772_161) == "host.example"
        assert rdns.resolve(1) is None

    def test_later_registration_wins(self):
        rdns = ReverseDNS()
        rdns.register(5, "old.example")
        rdns.register(5, "new.example")
        assert rdns.resolve(5) == "new.example"

    def test_empty_hostname_rejected(self):
        with pytest.raises(ValueError):
            ReverseDNS().register(5, "")

    def test_register_many_template(self):
        rdns = ReverseDNS()
        rdns.register_many([167_772_161], "scan-{dashed}.org.example")
        assert rdns.resolve(167_772_161) == "scan-10-0-0-1.org.example"
        rdns.register_many([167_772_162], "ptr.{ip}.example")
        assert rdns.resolve(167_772_162) == "ptr.10.0.0.2.example"

    def test_resolve_many(self):
        rdns = ReverseDNS()
        rdns.register(1, "a.example")
        out = rdns.resolve_many(np.array([1, 2], dtype=np.uint32))
        assert out == ["a.example", None]

    def test_keyword_matching(self):
        rdns = ReverseDNS()
        rdns.register(1, "scan-1.NetCensus.example")
        assert rdns.matches_keywords(1, ["netcensus"])
        assert not rdns.matches_keywords(1, ["otherorg"])
        assert not rdns.matches_keywords(2, ["netcensus"])

    def test_len(self):
        rdns = ReverseDNS()
        rdns.register(1, "a")
        rdns.register(2, "b")
        assert len(rdns) == 2
