"""Tests for the blocklist-deployment simulation."""

import pytest

from repro.core.lists import BlocklistEntry, DailyBlocklist
from repro.core.mitigation import (
    MitigationCell,
    deployed_list_for_day,
    simulate_blocking,
    summarize,
)
from repro.flows.netflow import FlowTable


def entry(address, packets, acked=False):
    return BlocklistEntry(
        address=address,
        definitions=(1,),
        packets=packets,
        asn=1,
        country="US",
        acknowledged=acked,
    )


def blocklists_fixture():
    return {
        0: DailyBlocklist(day=0, entries=[entry(10, 100), entry(11, 50, acked=True)]),
        1: DailyBlocklist(day=1, entries=[entry(10, 80), entry(12, 60)]),
    }


def flows_fixture():
    rows = [
        # (router, day, src, dport, proto, pkts, sampled)
        (0, 1, 10, 23, 6, 5_000, 5),
        (0, 1, 11, 443, 6, 2_000, 2),
        (0, 1, 12, 23, 6, 1_000, 1),
        (0, 2, 12, 23, 6, 4_000, 4),
        (0, 2, 13, 23, 6, 3_000, 3),
    ]
    return FlowTable.from_rows(rows)


class TestDeployedList:
    def test_lag_selects_older_list(self):
        blocklists = blocklists_fixture()
        assert deployed_list_for_day(blocklists, 1, lag_days=1) == {10}
        assert deployed_list_for_day(blocklists, 2, lag_days=1) == {10, 12}

    def test_no_list_old_enough(self):
        assert deployed_list_for_day(blocklists_fixture(), 0, lag_days=1) == set()

    def test_zero_lag_uses_same_day(self):
        deployed = deployed_list_for_day(blocklists_fixture(), 0, lag_days=0)
        assert deployed == {10}  # acked entry excluded by default

    def test_include_acknowledged(self):
        deployed = deployed_list_for_day(
            blocklists_fixture(), 0, lag_days=0, include_acknowledged=True
        )
        assert deployed == {10, 11}

    def test_max_entries_takes_heaviest(self):
        deployed = deployed_list_for_day(
            blocklists_fixture(), 2, lag_days=1, max_entries=1
        )
        assert deployed == {10}

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            deployed_list_for_day({}, 0, lag_days=-1)


class TestSimulation:
    def test_blocking_accounting(self):
        cells = simulate_blocking(
            flows_fixture(),
            {(0, 1): 100_000, (0, 2): 100_000},
            blocklists_fixture(),
            ah_sources={10, 11, 12, 13},
            lag_days=1,
        )
        by_day = {c.day: c for c in cells}
        # Day 1 deploys day-0's non-acked list {10}: blocks 5,000.
        assert by_day[1].blocked_packets == 5_000
        assert by_day[1].ah_packets == 8_000
        assert by_day[1].ah_coverage == pytest.approx(5_000 / 8_000)
        assert by_day[1].relief == pytest.approx(0.05)
        # Day 2 deploys day-1's list {10, 12}: blocks src 12's 4,000.
        assert by_day[2].blocked_packets == 4_000

    def test_stale_list_blocks_less(self):
        flows = flows_fixture()
        totals = {(0, 1): 100_000, (0, 2): 100_000}
        fresh = simulate_blocking(
            flows, totals, blocklists_fixture(), {10, 11, 12, 13}, lag_days=0
        )
        stale = simulate_blocking(
            flows, totals, blocklists_fixture(), {10, 11, 12, 13}, lag_days=2
        )
        assert sum(c.blocked_packets for c in stale) <= sum(
            c.blocked_packets for c in fresh
        )

    def test_summarize(self):
        cells = [
            MitigationCell(0, 1, 500, 1_000, 10_000),
            MitigationCell(0, 2, 300, 1_000, 10_000),
        ]
        summary = summarize(cells)
        assert summary["blocked_packets"] == 800
        assert summary["ah_coverage"] == pytest.approx(0.4)
        assert summary["relief"] == pytest.approx(0.04)

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary["relief"] == 0.0


class TestEndToEnd:
    def test_blocking_on_tiny_scenario(self, tiny_report):
        flows, totals = tiny_report.result.collect_flows()
        blocklists = {
            day: tiny_report.daily_blocklist(day)
            for day in tiny_report.result.scenario.flow_days
        }
        ah = tiny_report.detections[1].sources
        cells = simulate_blocking(
            flows, totals, blocklists, ah, lag_days=1,
            include_acknowledged=True,
        )
        summary = summarize(cells)
        # A one-day-lagged full list still removes a meaningful share of
        # AH traffic (statistical tolerance — the exact share moves with
        # the emission realization)...
        assert summary["ah_coverage"] > 0.08
        # ...and never more than the AH actually sent.
        for cell in cells:
            assert cell.blocked_packets <= cell.ah_packets + cell.total_packets
        # Relief is bounded by the AH share of traffic.
        assert 0.0 <= summary["relief"] < 0.2
