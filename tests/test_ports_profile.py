"""Unit tests for the port/service popularity profiles."""

import numpy as np
import pytest

from repro.packet import Protocol
from repro.scanners.ports import (
    AGGRESSIVE_PROFILE_2021,
    AGGRESSIVE_PROFILE_2022,
    MIRAI_PORT_WEIGHTS,
    MIRAI_PORTS,
    RESEARCH_PROFILE,
    SMALL_SCAN_PROFILE,
    PortProfile,
    profile_for_year,
    service_label,
)


class TestProfiles:
    def test_weights_normalized(self):
        for profile in (
            AGGRESSIVE_PROFILE_2021,
            AGGRESSIVE_PROFILE_2022,
            SMALL_SCAN_PROFILE,
            RESEARCH_PROFILE,
        ):
            assert profile.weights().sum() == pytest.approx(1.0)

    def test_redis_and_telnet_lead_aggressive(self):
        for profile in (AGGRESSIVE_PROFILE_2021, AGGRESSIVE_PROFILE_2022):
            weights = profile.weights()
            order = np.argsort(weights)[::-1]
            top_ports = [profile.entries[i][0] for i in order[:3]]
            assert top_ports[0] == 6_379  # Redis first
            assert top_ports[1] == 23  # Telnet second
            assert top_ports[2] == 22  # SSH third

    def test_twenty_of_25_shared_across_years(self):
        keys_2021 = {(e[0], e[1]) for e in AGGRESSIVE_PROFILE_2021.entries}
        keys_2022 = {(e[0], e[1]) for e in AGGRESSIVE_PROFILE_2022.entries}
        assert len(keys_2021 & keys_2022) == 20

    def test_four_udp_services_in_aggressive(self):
        udp = [e for e in AGGRESSIVE_PROFILE_2022.entries if e[1] is Protocol.UDP]
        assert len(udp) == 4

    def test_icmp_completes_the_set(self):
        icmp = [
            e for e in AGGRESSIVE_PROFILE_2022.entries if e[1] is Protocol.ICMP_ECHO
        ]
        assert len(icmp) == 1

    def test_445_only_in_small_scans(self):
        aggressive_ports = {e[0] for e in AGGRESSIVE_PROFILE_2022.entries}
        small_ports = {e[0] for e in SMALL_SCAN_PROFILE.entries}
        assert 445 not in aggressive_ports
        assert 445 in small_ports

    def test_profile_for_year(self):
        assert profile_for_year(2021) is AGGRESSIVE_PROFILE_2021
        assert profile_for_year(2022) is AGGRESSIVE_PROFILE_2022
        assert profile_for_year(2030) is AGGRESSIVE_PROFILE_2022

    def test_sampling_follows_weights(self, rng):
        profile = PortProfile(
            entries=((80, Protocol.TCP_SYN, 9.0), (23, Protocol.TCP_SYN, 1.0))
        )
        draws = profile.sample_many(rng, 2_000)
        share_80 = np.mean([p == 80 for p, _ in draws])
        assert 0.85 < share_80 < 0.95

    def test_sample_single(self, rng):
        port, proto = SMALL_SCAN_PROFILE.sample(rng)
        assert (port, proto, ) [0] in {e[0] for e in SMALL_SCAN_PROFILE.entries}

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            PortProfile(entries=())

    def test_mirai_ports(self):
        assert MIRAI_PORTS.tolist() == [23, 2_323]
        assert MIRAI_PORT_WEIGHTS.sum() == pytest.approx(1.0)


class TestServiceLabel:
    def test_known_service(self):
        assert service_label(6_379, Protocol.TCP_SYN) == "6379/TCP (Redis)"

    def test_unknown_service(self):
        assert service_label(12_345, Protocol.TCP_SYN) == "12345/TCP"

    def test_udp(self):
        assert service_label(123, Protocol.UDP) == "123/UDP (NTP)"

    def test_icmp(self):
        assert service_label(0, Protocol.ICMP_ECHO) == "ICMP Echo"
