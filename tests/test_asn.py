"""Unit tests for the AS registry."""

import numpy as np
import pytest

from repro.net.addr import parse_ip
from repro.net.asn import ASRegistry, ASType, AutonomousSystem, build_registry
from repro.net.prefix import Prefix


def _registry():
    return build_registry(
        [
            (65001, "cloud-us-1", "US", ASType.CLOUD, ["10.0.0.0/8"]),
            (65002, "isp-cn-1", "CN", ASType.ISP, ["192.0.2.0/24", "198.51.100.0/24"]),
            (65003, "edu-de-1", "DE", ASType.EDU, ["203.0.113.0/24"]),
        ]
    )


class TestAutonomousSystem:
    def test_size_sums_prefixes(self):
        system = _registry().by_asn(65002)
        assert system.size == 512

    def test_label_format(self):
        assert _registry().by_asn(65001).label() == "Cloud (US)"

    def test_invalid_country_rejected(self):
        with pytest.raises(ValueError):
            AutonomousSystem(asn=1, org="x", country="USA", as_type=ASType.ISP)

    def test_invalid_asn_rejected(self):
        with pytest.raises(ValueError):
            AutonomousSystem(asn=0, org="x", country="US", as_type=ASType.ISP)


class TestASRegistry:
    def test_lookup_index(self):
        reg = _registry()
        arr = np.array(
            [parse_ip("10.1.2.3"), parse_ip("198.51.100.7"), parse_ip("8.8.8.8")],
            dtype=np.uint32,
        )
        idx = reg.lookup_index(arr)
        assert reg.systems[idx[0]].asn == 65001
        assert reg.systems[idx[1]].asn == 65002
        assert idx[2] == -1

    def test_lookup_one(self):
        reg = _registry()
        assert reg.lookup_one(parse_ip("203.0.113.50")).asn == 65003
        assert reg.lookup_one(parse_ip("8.8.8.8")) is None

    def test_asns_vector(self):
        reg = _registry()
        arr = np.array([parse_ip("10.0.0.1"), parse_ip("8.8.8.8")], dtype=np.uint32)
        assert reg.asns(arr).tolist() == [65001, 0]

    def test_countries(self):
        reg = _registry()
        arr = np.array([parse_ip("192.0.2.1"), parse_ip("8.8.8.8")], dtype=np.uint32)
        assert reg.countries(arr) == ["CN", "??"]

    def test_duplicate_asn_rejected(self):
        systems = [
            AutonomousSystem(1, "a", "US", ASType.ISP, (Prefix.parse("10.0.0.0/8"),)),
            AutonomousSystem(1, "b", "US", ASType.ISP, (Prefix.parse("11.0.0.0/8"),)),
        ]
        with pytest.raises(ValueError):
            ASRegistry(systems)

    def test_by_asn_unknown(self):
        with pytest.raises(KeyError):
            _registry().by_asn(99999)

    def test_iteration_and_len(self):
        reg = _registry()
        assert len(reg) == 3
        assert {s.asn for s in reg} == {65001, 65002, 65003}
