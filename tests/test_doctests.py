"""Executes the doc-comment examples embedded in the public API."""

import doctest

import pytest

import repro.net.addr


@pytest.mark.parametrize("module", [repro.net.addr])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
    assert results.failed == 0


def test_python_dash_m_entrypoint(capsys):
    import runpy

    with pytest.raises(SystemExit) as exc:
        runpy.run_module("repro", run_name="__main__", alter_sys=True)
    # argparse exits with 2 when no command is given.
    assert exc.value.code == 2
