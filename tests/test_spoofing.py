"""Spoofing / backscatter robustness of the detection pipeline.

The paper's §7 stresses that the AH methodologies aim at "quality
lists, minimizing false positives due to spoofing or misconfigurations".
These tests exercise the two classic hazards:

* **DDoS backscatter** — a victim's SYN-ACK replies to spoofed sources
  can blanket the dark space at dispersion-level coverage, but must
  never enter scanner detection (the event builder keys on scanning
  packet types only).
* **Spoofed scans** — probes with forged, rotating sources create
  crowds of one-packet "sources" that stay far below every threshold.
"""

import numpy as np
import pytest

from repro.config import DetectionConfig
from repro.core.detection import detect_all
from repro.core.events import build_events
from repro.net.prefix import Prefix
from repro.packet import PacketBatch, Protocol, SCANNING_PROTOCOLS
from repro.scanners.background import SpoofedScan, build_backscatter_victims
from repro.telescope.darknet import Telescope

DAY = 86_400.0


@pytest.fixture()
def telescope():
    return Telescope.from_prefix(Prefix.parse("10.0.0.0/20"))


class TestProtocolTaxonomy:
    def test_scanning_flags(self):
        assert Protocol.TCP_SYN.is_scanning
        assert Protocol.UDP.is_scanning
        assert Protocol.ICMP_ECHO.is_scanning
        assert not Protocol.TCP_SYNACK.is_scanning
        assert not Protocol.TCP_RST.is_scanning
        assert SCANNING_PROTOCOLS == {
            Protocol.TCP_SYN,
            Protocol.UDP,
            Protocol.ICMP_ECHO,
        }

    def test_backscatter_labels(self):
        assert "backscatter" in Protocol.TCP_SYNACK.label()
        assert "backscatter" in Protocol.TCP_RST.label()


class TestBackscatter:
    def test_victims_emit_non_scanning_types(self, telescope, rng):
        victims = build_backscatter_victims(
            rng,
            np.arange(50, 55, dtype=np.uint32),
            duration=2 * DAY,
            attack_pps_low=5e6,
            attack_pps_high=5e7,
        )
        batch = PacketBatch.concat(
            [v.emit(telescope.view()) for v in victims]
        )
        assert len(batch) > 0
        codes = set(np.unique(batch.proto).tolist())
        assert codes <= {Protocol.TCP_SYNACK.value, Protocol.TCP_RST.value}

    def test_backscatter_never_detected(self, telescope, rng):
        # A violent attack: the victim's replies cover well over 10% of
        # the dark space — dispersion-grade coverage in raw packets.
        victims = build_backscatter_victims(
            rng,
            np.array([99], dtype=np.uint32),
            duration=2 * DAY,
            attack_pps_low=3e7,
            attack_pps_high=3e7,
            attack_minutes_low=200.0,
            attack_minutes_high=240.0,
        )
        capture = telescope.capture(victims, (0.0, 2 * DAY))
        coverage = capture.destination_count() / telescope.size
        assert coverage > 0.1, "test setup: backscatter must blanket the darknet"

        events = build_events(capture.packets, timeout=600.0)
        assert len(events) == 0  # non-scanning types filtered out
        detections = detect_all(events, telescope.size, DetectionConfig(alpha=0.01))
        for result in detections.values():
            assert 99 not in result.sources

    def test_mixed_capture_keeps_scanning_events(self, telescope, rng):
        from tests.test_scanner_base import coverage_session
        from repro.scanners.base import Scanner

        scanner = Scanner(
            src=7, behavior="t", sessions=[coverage_session(0.5)], seed=7
        )
        victims = build_backscatter_victims(
            rng, np.array([99], dtype=np.uint32), duration=DAY,
            attack_pps_low=1e7, attack_pps_high=1e7,
        )
        capture = telescope.capture([scanner] + victims, (0.0, DAY))
        events = build_events(capture.packets, timeout=600.0)
        assert set(events.sources_of()) == {7}
        assert int(events.packets.sum()) == capture.packets_from({7})


class TestSpoofedScan:
    def _spoofed(self, coverage=1.0, seed=5):
        spoof_ranges = np.array([[2**24, 2**28]], dtype=np.int64)
        return SpoofedScan(
            start=100.0,
            duration=3_600.0,
            coverage=coverage,
            dport=23,
            spoof_ranges=spoof_ranges,
            seed=seed,
        )

    def test_sources_rotate(self, telescope):
        batch = self._spoofed().emit(telescope.view())
        assert len(batch) == telescope.size
        # Essentially every packet carries a fresh forged source.
        assert len(np.unique(batch.src)) > 0.95 * len(batch)

    def test_window_clipping(self, telescope):
        spoofed = self._spoofed()
        half = spoofed.emit(telescope.view(), window=(100.0, 1_900.0))
        assert 0 < len(half) < telescope.size
        assert half.ts.max() < 1_900.0

    def test_never_detected(self, telescope):
        capture = telescope.capture([self._spoofed()], (0.0, DAY))
        events = build_events(capture.packets, timeout=600.0)
        # The probes DO form (tiny) events — they are real SYNs — but
        # no forged source ever crosses a threshold.
        assert len(events) > 0
        assert int(events.packets.max()) <= 3
        detections = detect_all(
            events, telescope.size, DetectionConfig(alpha=1e-4)
        )
        assert detections[1].sources == set()
        assert detections[3].sources == set()

    def test_flow_and_stream_paths_silent(self, telescope, rng):
        spoofed = self._spoofed()
        assert spoofed.count_rows(telescope.view(), (0.0, DAY), DAY, rng) == []
        acc = np.zeros(10, dtype=np.int64)
        spoofed.accumulate_stream(acc, telescope.view(), (0.0, 10.0), rng)
        assert acc.sum() == 0

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            self._spoofed(coverage=0.0)


class TestEventBuilderFilter:
    def test_filter_is_exact(self):
        # Hand-built batch mixing all five protocol codes.
        n = 5
        batch = PacketBatch(
            ts=np.arange(n, dtype=np.float64),
            src=np.full(n, 1, dtype=np.uint32),
            dst=np.arange(n, dtype=np.uint32),
            dport=np.array([80, 53, 0, 80, 80], dtype=np.uint16),
            proto=np.array(
                [
                    Protocol.TCP_SYN.value,
                    Protocol.UDP.value,
                    Protocol.ICMP_ECHO.value,
                    Protocol.TCP_SYNACK.value,
                    Protocol.TCP_RST.value,
                ],
                dtype=np.uint8,
            ),
            ipid=np.zeros(n, dtype=np.uint16),
        )
        events = build_events(batch, timeout=60.0)
        assert int(events.packets.sum()) == 3
        kept = {int(p) for p in np.unique(events.proto)}
        assert kept == {
            Protocol.TCP_SYN.value,
            Protocol.UDP.value,
            Protocol.ICMP_ECHO.value,
        }
