"""Unit tests for NetFlow export and the flow table."""

import numpy as np
import pytest

from repro.flows.netflow import FlowTable, NetflowExporter


def rows_fixture():
    # (router, day, src, dport, proto, true_count)
    return [
        (0, 0, 100, 80, 6, 50_000),
        (1, 0, 100, 80, 6, 20_000),
        (0, 1, 200, 23, 6, 80_000),
        (2, 1, 300, 53, 17, 5_000),
    ]


class TestExporter:
    def test_sampling_statistics(self, rng):
        exporter = NetflowExporter(sampling_rate=1_000)
        sampled = [exporter.sample_count(100_000, rng) for _ in range(50)]
        assert abs(np.mean(sampled) - 100) < 10

    def test_rate_one_is_identity(self, rng):
        exporter = NetflowExporter(sampling_rate=1)
        assert exporter.sample_count(1_234, rng) == 1_234

    def test_zero_flows_dropped(self, rng):
        exporter = NetflowExporter(sampling_rate=1_000)
        table = exporter.export([(0, 0, 1, 80, 6, 3)], rng)
        # A 3-packet flow almost surely samples to nothing.
        assert len(table) in (0, 1)

    def test_keep_zero(self, rng):
        exporter = NetflowExporter(sampling_rate=10**9, keep_zero=True)
        table = exporter.export([(0, 0, 1, 80, 6, 3)], rng)
        assert len(table) == 1
        assert table.packets[0] == 0

    def test_estimated_scaling(self, rng):
        exporter = NetflowExporter(sampling_rate=100)
        table = exporter.export(rows_fixture(), rng)
        assert np.all(table.packets == table.sampled * 100)
        # The estimate is unbiased: totals land near the truth.
        truth = sum(r[5] for r in rows_fixture())
        assert abs(table.total_packets() - truth) < 0.2 * truth

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            NetflowExporter(sampling_rate=0)

    def test_negative_count(self, rng):
        with pytest.raises(ValueError):
            NetflowExporter().sample_count(-1, rng)

    def test_sample_total(self):
        exporter = NetflowExporter(sampling_rate=1_000)
        estimate = exporter.sample_total(10_000_000, seed=42)
        assert abs(estimate - 10_000_000) < 500_000

    def test_sample_total_order_independent(self, rng):
        # The fix this API exists for: totals draw from their own
        # derived stream, so estimating before or after an export (or in
        # any key order) yields identical values.
        exporter = NetflowExporter(sampling_rate=1_000)
        before = [exporter.sample_total(10_000_000, seed=7, key=k) for k in range(4)]
        exporter.export(rows_fixture(), rng)
        after = [exporter.sample_total(10_000_000, seed=7, key=k) for k in reversed(range(4))]
        assert before == list(reversed(after))
        # Distinct keys give independent draws off the same seed.
        assert len(set(before)) > 1


class TestFlowTable:
    @pytest.fixture()
    def table(self, rng):
        return NetflowExporter(sampling_rate=1).export(rows_fixture(), rng)

    def test_from_rows_empty(self):
        assert len(FlowTable.from_rows([])) == 0

    def test_for_router_day(self, table):
        sub = table.for_router_day(0, 0)
        assert len(sub) == 1
        assert sub.src[0] == 100

    def test_for_sources(self, table):
        sub = table.for_sources({100})
        assert len(sub) == 2
        assert len(table.for_sources(set())) == 0

    def test_total_packets(self, table):
        assert table.total_packets() == 155_000

    def test_unique_sources(self, table):
        assert table.unique_sources().tolist() == [100, 200, 300]

    def test_packets_by_port(self, table):
        by_port = table.packets_by_port()
        assert by_port[(80, 6)] == 70_000
        assert by_port[(53, 17)] == 5_000

    def test_packets_by_proto(self, table):
        by_proto = table.packets_by_proto()
        assert by_proto[6] == 150_000
        assert by_proto[17] == 5_000

    def test_select_roundtrip(self, table):
        mask = table.day == 1
        sub = table.select(mask)
        assert len(sub) == 2
        assert set(sub.src.tolist()) == {200, 300}
