"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_scenario_default(self):
        args = cli.build_parser().parse_args(["summary"])
        assert args.scenario == "tiny"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            cli._scenario("bogus")

    def test_blocklist_day_flag(self):
        args = cli.build_parser().parse_args(["blocklist", "--day", "2"])
        assert args.day == 2

    def test_mode_default_and_choices(self):
        args = cli.build_parser().parse_args(["summary"])
        assert args.mode == "batch"
        args = cli.build_parser().parse_args(["--mode", "streaming", "summary"])
        assert args.mode == "streaming"
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["--mode", "bogus", "summary"])

    def test_chunk_hours_requires_streaming(self):
        with pytest.raises(SystemExit, match="requires --mode streaming"):
            cli.main(["--chunk-hours", "2", "summary"])

    def test_workers_allowed_in_batch_mode(self, capsys):
        # Batch mode accepts --workers now: the columnar flow synthesis
        # behind impact/mitigation shards across the pool in any mode.
        assert (
            cli.main(["--scenario", "tiny", "--workers", "2", "impact"]) == 0
        )
        out = capsys.readouterr().out
        assert "Router-1" in out

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit, match=">= 1"):
            cli.main(["--mode", "streaming", "--workers", "0", "summary"])
        with pytest.raises(SystemExit, match=">= 1"):
            cli.main(["--workers", "0", "summary"])


class TestCommands:
    """End-to-end CLI runs over the tiny scenario (one per command)."""

    def test_summary(self, capsys):
        assert cli.main(["--scenario", "tiny", "summary"]) == 0
        out = capsys.readouterr().out
        assert "darknet packets" in out
        assert "Definition 1" in out
        assert "Jaccard" in out

    def test_summary_streaming(self, capsys):
        assert (
            cli.main(
                [
                    "--scenario", "tiny",
                    "--mode", "streaming",
                    "--chunk-hours", "6",
                    "summary",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Streaming pipeline telemetry" in out
        assert "peak open flows" in out
        assert "max watermark lag" in out
        assert "stage detect" in out
        # Same detections as the batch table would show.
        assert "Definition 1" in out

    def test_summary_streaming_workers(self, capsys):
        assert (
            cli.main(
                [
                    "--scenario", "tiny",
                    "--mode", "streaming",
                    "--workers", "2",
                    "summary",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Streaming pipeline telemetry" in out
        assert "workers" in out
        assert "worker 0" in out
        assert "worker 1" in out
        assert "Definition 1" in out

    def test_impact(self, capsys):
        assert cli.main(["--scenario", "tiny", "impact"]) == 0
        out = capsys.readouterr().out
        assert "Router-1" in out
        assert "%" in out

    def test_blocklist(self, capsys):
        assert cli.main(["--scenario", "tiny", "blocklist", "--day", "1"]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("# ip,definitions")
        assert "entries" in captured.err

    def test_trends(self, capsys):
        assert cli.main(["--scenario", "tiny", "trends"]) == 0
        out = capsys.readouterr().out
        assert "daily AH" in out

    def test_ports(self, capsys):
        assert cli.main(["--scenario", "tiny", "ports"]) == 0
        out = capsys.readouterr().out
        assert "service" in out
        assert "zmap" in out

    def test_churn(self, capsys):
        assert cli.main(["--scenario", "tiny", "churn"]) == 0
        out = capsys.readouterr().out
        assert "retention" in out
        assert "refresh" in out

    def test_mitigation(self, capsys):
        assert cli.main(
            ["--scenario", "tiny", "mitigation", "--lag", "0", "--max-entries", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "blocked pkts" in out
        assert "AH coverage" in out
        assert "Overall:" in out
