"""Unit tests for scanner-tool fingerprints."""

import numpy as np

from repro.fingerprint import (
    Tool,
    ZMAP_IPID,
    classify,
    masscan_ipid,
    random_ipid,
    tool_counts,
    zmap_ipid,
)
from repro.packet import PacketBatch, Protocol


def _batch(dst, dport, ipid):
    n = len(dst)
    return PacketBatch(
        ts=np.zeros(n),
        src=np.zeros(n, dtype=np.uint32),
        dst=np.asarray(dst, dtype=np.uint32),
        dport=np.asarray(dport, dtype=np.uint16),
        proto=np.full(n, Protocol.TCP_SYN.value, dtype=np.uint8),
        ipid=np.asarray(ipid, dtype=np.uint16),
    )


class TestGenerators:
    def test_zmap_constant(self):
        assert np.all(zmap_ipid(10) == ZMAP_IPID)

    def test_masscan_depends_on_target(self):
        dst = np.array([100, 100, 200], dtype=np.uint32)
        dport = np.array([80, 443, 80], dtype=np.uint16)
        ipid = masscan_ipid(dst, dport)
        assert ipid[0] != ipid[1]
        assert ipid[0] != ipid[2]
        assert ipid[0] == ((100 ^ 80) & 0xFFFF)

    def test_random_ipid_range(self, rng):
        out = random_ipid(rng, 1000)
        assert out.dtype == np.uint16
        assert out.min() >= 0


class TestClassify:
    def test_zmap_detected(self):
        batch = _batch([1, 2], [80, 80], [ZMAP_IPID, ZMAP_IPID])
        assert np.all(classify(batch) == Tool.ZMAP.value)

    def test_masscan_detected(self):
        dst = np.array([1234, 5678], dtype=np.uint32)
        dport = np.array([80, 443], dtype=np.uint16)
        batch = _batch(dst, dport, masscan_ipid(dst, dport))
        assert np.all(classify(batch) == Tool.MASSCAN.value)

    def test_other_default(self):
        # Choose an ipid that is neither the ZMap constant nor the
        # masscan cookie for this target.
        dst, dport = 1000, 80
        bad = (dst ^ dport ^ 0x5555) & 0xFFFF
        assert bad != ZMAP_IPID
        batch = _batch([dst], [dport], [bad])
        assert classify(batch)[0] == Tool.OTHER.value

    def test_zmap_precedence_over_masscan_collision(self):
        # Craft dst^dport == ZMAP_IPID: both signatures match.
        dst = np.uint32(ZMAP_IPID)
        batch = _batch([dst], [0], [ZMAP_IPID])
        assert classify(batch)[0] == Tool.ZMAP.value

    def test_tool_counts(self):
        dst = np.array([1, 2, 3], dtype=np.uint32)
        dport = np.array([80, 80, 80], dtype=np.uint16)
        ipid = np.array(
            [ZMAP_IPID, masscan_ipid(dst[1:2], dport[1:2])[0], 7], dtype=np.uint16
        )
        counts = tool_counts(_batch(dst, dport, ipid))
        assert counts[Tool.ZMAP] == 1
        assert counts[Tool.MASSCAN] == 1
        assert counts[Tool.OTHER] == 1

    def test_labels(self):
        assert Tool.ZMAP.label() == "ZMap"
        assert Tool.MASSCAN.label() == "Masscan"
        assert Tool.OTHER.label() == "Other"
