"""Unit tests for the simulation clock/calendar."""

import datetime as dt

import numpy as np
import pytest

from repro.sim.clock import SimClock


class TestDayMath:
    def test_day_index_scalar_and_array(self):
        clock = SimClock()
        assert clock.day_index(0.0) == 0
        assert clock.day_index(86_399.9) == 0
        assert clock.day_index(86_400.0) == 1
        arr = clock.day_index(np.array([0.0, 90_000.0, 200_000.0]))
        assert arr.tolist() == [0, 1, 2]

    def test_day_bounds(self):
        clock = SimClock()
        assert clock.day_bounds(2) == (172_800.0, 259_200.0)

    def test_compressed_days(self):
        clock = SimClock(seconds_per_day=3_600.0)
        assert clock.day_index(7_000.0) == 1
        assert clock.day_bounds(1) == (3_600.0, 7_200.0)

    def test_invalid_day_length(self):
        with pytest.raises(ValueError):
            SimClock(seconds_per_day=0)

    def test_day_count(self):
        clock = SimClock()
        assert clock.day_count(0.0) == 0
        assert clock.day_count(1.0) == 1
        assert clock.day_count(86_400.0) == 1
        assert clock.day_count(86_401.0) == 2

    def test_day_count_negative(self):
        with pytest.raises(ValueError):
            SimClock().day_count(-1)


class TestCalendar:
    def test_date_of(self):
        clock = SimClock(start_date=dt.date(2022, 1, 15))
        assert clock.date_of(0) == dt.date(2022, 1, 15)
        assert clock.date_of(6) == dt.date(2022, 1, 21)

    def test_label_matches_paper_style(self):
        clock = SimClock(start_date=dt.date(2022, 1, 15))
        assert clock.label(0) == "2022-01-15 (Sat)"
        assert clock.label(2) == "2022-01-17 (Mon)"

    def test_weekend_detection(self):
        clock = SimClock(start_date=dt.date(2022, 1, 15))  # Saturday
        assert clock.is_weekend(0)
        assert clock.is_weekend(1)
        assert not clock.is_weekend(2)

    def test_weekday_name(self):
        clock = SimClock(start_date=dt.date(2022, 10, 1))
        assert clock.weekday_name(0) == "Sat"
