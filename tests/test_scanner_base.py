"""Unit tests for scanner sessions and the emission math."""

import numpy as np
import pytest

from repro.fingerprint import Tool, ZMAP_IPID, classify, masscan_ipid
from repro.net.prefix import Prefix, PrefixSet
from repro.packet import Protocol
from repro.scanners.base import (
    ScanMode,
    ScanSession,
    Scanner,
    View,
    emit_population,
    full_ipv4_ranges,
)


def make_view(base="10.0.0.0", length=16, name="test-view"):
    return View(name=name, prefixes=PrefixSet([Prefix.parse(f"{base}/{length}")]))


def coverage_session(coverage=0.5, ports=(80,), start=0.0, duration=100.0, **kw):
    return ScanSession(
        start=start,
        duration=duration,
        ports=np.array(ports, dtype=np.uint16),
        proto=kw.pop("proto", Protocol.TCP_SYN),
        tool=kw.pop("tool", Tool.ZMAP),
        mode=ScanMode.COVERAGE,
        coverage=coverage,
        **kw,
    )


class TestSessionValidation:
    def test_coverage_bounds(self):
        with pytest.raises(ValueError):
            coverage_session(coverage=0.0)
        with pytest.raises(ValueError):
            coverage_session(coverage=1.5)

    def test_rate_positive(self):
        with pytest.raises(ValueError):
            ScanSession(
                start=0, duration=10, ports=np.array([80]), proto=Protocol.TCP_SYN,
                tool=Tool.OTHER, mode=ScanMode.RATE, rate_pps=0,
            )

    def test_vertical_targets_positive(self):
        with pytest.raises(ValueError):
            ScanSession(
                start=0, duration=10, ports=np.array([80]), proto=Protocol.TCP_SYN,
                tool=Tool.OTHER, mode=ScanMode.VERTICAL, n_targets=0,
            )

    def test_needs_ports(self):
        with pytest.raises(ValueError):
            ScanSession(
                start=0, duration=10, ports=np.array([], dtype=np.uint16),
                proto=Protocol.TCP_SYN, tool=Tool.OTHER, mode=ScanMode.COVERAGE,
                coverage=0.5,
            )

    def test_port_weights_normalized(self):
        session = ScanSession(
            start=0, duration=10, ports=np.array([23, 2323]), proto=Protocol.TCP_SYN,
            tool=Tool.OTHER, mode=ScanMode.RATE, rate_pps=10.0,
            port_weights=np.array([9.0, 1.0]),
        )
        assert session.port_weights.sum() == pytest.approx(1.0)

    def test_port_weights_misaligned(self):
        with pytest.raises(ValueError):
            ScanSession(
                start=0, duration=10, ports=np.array([23]), proto=Protocol.TCP_SYN,
                tool=Tool.OTHER, mode=ScanMode.RATE, rate_pps=10.0,
                port_weights=np.array([0.5, 0.5]),
            )

    def test_duration_positive(self):
        with pytest.raises(ValueError):
            coverage_session(duration=0.0)


class TestCoverageEmission:
    def test_full_coverage_hits_everything(self):
        view = make_view(length=22)  # 1024 addrs
        scanner = Scanner(src=1, behavior="t", sessions=[coverage_session(1.0)], seed=3)
        batch = scanner.emit(view)
        assert len(batch) == 1024
        assert len(np.unique(batch.dst)) == 1024

    def test_partial_coverage_statistics(self):
        view = make_view(length=16)  # 65536 addrs
        scanner = Scanner(src=1, behavior="t", sessions=[coverage_session(0.25)], seed=3)
        batch = scanner.emit(view)
        # Binomial(65536, 0.25): mean 16384, sd ~111.
        assert abs(len(batch) - 16_384) < 800
        assert len(np.unique(batch.dst)) == len(batch)

    def test_probes_per_target(self):
        view = make_view(length=24)
        session = coverage_session(1.0, probes_per_target=3)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=3)
        batch = scanner.emit(view)
        assert len(batch) == 3 * 256
        assert len(np.unique(batch.dst)) == 256

    def test_timestamps_within_session(self):
        view = make_view(length=20)
        session = coverage_session(0.5, start=50.0, duration=25.0)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=3)
        batch = scanner.emit(view)
        assert batch.ts.min() >= 50.0 and batch.ts.max() < 75.0

    def test_window_clipping_scales_volume(self):
        view = make_view(length=16)
        session = coverage_session(0.5, start=0.0, duration=100.0)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=3)
        half = scanner.emit(view, window=(0.0, 50.0))
        # Half the window -> about half the coverage.
        assert abs(len(half) - 0.25 * view.size) < 900
        assert half.ts.max() < 50.0

    def test_window_outside_session_empty(self):
        view = make_view(length=16)
        scanner = Scanner(src=1, behavior="t", sessions=[coverage_session(0.5)], seed=3)
        assert len(scanner.emit(view, window=(200.0, 300.0))) == 0

    def test_source_constant(self):
        view = make_view(length=20)
        scanner = Scanner(src=42, behavior="t", sessions=[coverage_session(0.9)], seed=3)
        batch = scanner.emit(view)
        assert np.all(batch.src == 42)


class TestRateEmission:
    def _rate_scanner(self, rate, ports=(23,), weights=None, duration=1_000.0):
        session = ScanSession(
            start=0.0, duration=duration, ports=np.array(ports, dtype=np.uint16),
            proto=Protocol.TCP_SYN, tool=Tool.OTHER, mode=ScanMode.RATE,
            rate_pps=rate, port_weights=weights,
        )
        return Scanner(src=9, behavior="t", sessions=[session], seed=5)

    def test_expected_volume(self):
        view = make_view(length=12)  # 2^20 addrs -> fraction 2^-12
        rate = 40_960.0  # expect rate * frac = 10 pps in view
        scanner = self._rate_scanner(rate)
        batch = scanner.emit(view)
        assert abs(len(batch) - 10_000) < 500

    def test_port_mix(self):
        view = make_view(length=12)
        scanner = self._rate_scanner(
            40_960.0, ports=(23, 2323), weights=np.array([0.9, 0.1])
        )
        batch = scanner.emit(view)
        share = np.mean(batch.dport == 23)
        assert 0.85 < share < 0.95

    def test_with_replacement_duplicates(self):
        view = make_view(length=24)  # tiny view: collisions certain
        scanner = self._rate_scanner(90e6, duration=100.0)
        batch = scanner.emit(view)
        assert len(np.unique(batch.dst)) < len(batch)

    def test_targeted_ranges(self):
        # A RATE session restricted to one address emits only to it.
        target = np.array([[167_772_161, 167_772_162]], dtype=np.int64)
        session = ScanSession(
            start=0.0, duration=100.0, ports=np.array([8080]),
            proto=Protocol.TCP_SYN, tool=Tool.OTHER, mode=ScanMode.RATE,
            rate_pps=0.1, target_ranges=target,
        )
        scanner = Scanner(src=9, behavior="t", sessions=[session], seed=5)
        view = make_view("10.0.0.0", 8)
        batch = scanner.emit(view)
        assert len(batch) > 0
        assert np.all(batch.dst == 167_772_161)


class TestVerticalEmission:
    def test_every_port_per_target(self):
        view = make_view(length=16)
        ports = np.array([10, 20, 30], dtype=np.uint16)
        session = ScanSession(
            start=0.0, duration=100.0, ports=ports, proto=Protocol.TCP_SYN,
            tool=Tool.MASSCAN, mode=ScanMode.VERTICAL,
            n_targets=2**16 * 64,  # expect ~1024 targets in view
        )
        scanner = Scanner(src=3, behavior="t", sessions=[session], seed=7)
        batch = scanner.emit(view)
        targets = np.unique(batch.dst)
        assert len(batch) == 3 * len(targets)
        # Each target sees all three ports.
        for t in targets[:10]:
            assert sorted(batch.dport[batch.dst == t].tolist()) == [10, 20, 30]


class TestFingerprints:
    def test_zmap_session_fingerprint(self):
        view = make_view(length=20)
        scanner = Scanner(
            src=1, behavior="t", sessions=[coverage_session(1.0, tool=Tool.ZMAP)], seed=1
        )
        batch = scanner.emit(view)
        assert np.all(batch.ipid == ZMAP_IPID)
        assert np.all(classify(batch) == Tool.ZMAP.value)

    def test_masscan_session_fingerprint(self):
        view = make_view(length=20)
        scanner = Scanner(
            src=1, behavior="t",
            sessions=[coverage_session(1.0, tool=Tool.MASSCAN)], seed=1,
        )
        batch = scanner.emit(view)
        assert np.array_equal(batch.ipid, masscan_ipid(batch.dst, batch.dport))

    def test_icmp_uses_port_zero(self):
        view = make_view(length=20)
        session = coverage_session(1.0, ports=(0,), proto=Protocol.ICMP_ECHO)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=1)
        batch = scanner.emit(view)
        assert np.all(batch.dport == 0)
        batch.validate_invariants()


class TestAnalyticPaths:
    def test_count_rows_match_expected_volume(self, rng):
        view = make_view(length=16)
        session = coverage_session(0.5, duration=86_400.0)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=1)
        rows = scanner.count_rows(view, (0.0, 86_400.0), 86_400.0, rng)
        assert len(rows) == 1
        day, port, proto, count = rows[0]
        assert day == 0 and port == 80 and proto == Protocol.TCP_SYN.value
        assert abs(count - 32_768) < 1_000

    def test_count_rows_split_across_days(self, rng):
        view = make_view(length=16)
        session = coverage_session(0.5, start=43_200.0, duration=86_400.0)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=1)
        rows = scanner.count_rows(view, (0.0, 2 * 86_400.0), 86_400.0, rng)
        days = sorted(r[0] for r in rows)
        assert days == [0, 1]
        total = sum(r[3] for r in rows)
        assert abs(total - 32_768) < 1_200

    def test_count_rows_window_restricts(self, rng):
        view = make_view(length=16)
        session = coverage_session(0.5, duration=86_400.0)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=1)
        rows = scanner.count_rows(view, (10 * 86_400.0, 11 * 86_400.0), 86_400.0, rng)
        assert rows == []

    def test_accumulate_stream_total(self, rng):
        view = make_view(length=12)
        session = ScanSession(
            start=100.0, duration=800.0, ports=np.array([23]),
            proto=Protocol.TCP_SYN, tool=Tool.OTHER, mode=ScanMode.RATE,
            rate_pps=40_960.0,  # 10 pps in the view
        )
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=1)
        acc = np.zeros(1_000, dtype=np.int64)
        scanner.accumulate_stream(acc, view, (0.0, 1_000.0), rng)
        assert acc[:100].sum() == 0
        assert acc[900:].sum() == 0
        assert abs(acc.sum() - 8_000) < 500

    def test_stream_and_packet_paths_agree(self, rng):
        view = make_view(length=14)
        session = coverage_session(0.8, duration=500.0)
        scanner = Scanner(src=1, behavior="t", sessions=[session], seed=1)
        packets = scanner.emit(view)
        acc = np.zeros(500, dtype=np.int64)
        scanner.accumulate_stream(acc, view, (0.0, 500.0), rng)
        # Independent draws of the same expectation: within 5%.
        assert abs(acc.sum() - len(packets)) < 0.05 * len(packets) + 200


class TestScannerHelpers:
    def test_activity_bounds(self):
        sessions = [coverage_session(0.5, start=10, duration=5),
                    coverage_session(0.5, start=100, duration=20)]
        scanner = Scanner(src=1, behavior="t", sessions=sessions, seed=1)
        assert scanner.first_activity() == 10
        assert scanner.last_activity() == 120

    def test_activity_requires_sessions(self):
        scanner = Scanner(src=1, behavior="t", sessions=[], seed=1)
        with pytest.raises(ValueError):
            scanner.first_activity()

    def test_distinct_ports(self):
        sessions = [coverage_session(0.5, ports=(80, 443)),
                    coverage_session(0.5, ports=(443, 22))]
        scanner = Scanner(src=1, behavior="t", sessions=sessions, seed=1)
        assert scanner.distinct_ports() == 3

    def test_emission_deterministic_per_view(self):
        view = make_view(length=18)
        scanner = Scanner(src=1, behavior="t", sessions=[coverage_session(0.5)], seed=11)
        a = scanner.emit(view)
        b = scanner.emit(view)
        assert np.array_equal(a.dst, b.dst)
        assert np.array_equal(a.ts, b.ts)

    def test_emission_differs_across_views(self):
        scanner = Scanner(src=1, behavior="t", sessions=[coverage_session(0.5)], seed=11)
        a = scanner.emit(make_view(length=18, name="v1"))
        b = scanner.emit(make_view(length=18, name="v2"))
        assert not np.array_equal(a.dst, b.dst)

    def test_emit_population_sorted(self):
        view = make_view(length=18)
        scanners = [
            Scanner(src=i, behavior="t", sessions=[coverage_session(0.3)], seed=i)
            for i in range(5)
        ]
        batch = emit_population(scanners, view)
        assert np.all(np.diff(batch.ts) >= 0)
        assert set(np.unique(batch.src)) == set(range(5))

    def test_full_ipv4_ranges(self):
        ranges = full_ipv4_ranges()
        assert ranges.shape == (1, 2)
        assert ranges[0, 1] - ranges[0, 0] == 2**32
