"""Unit tests for the ECDF / tail-threshold machinery."""

import numpy as np
import pytest

from repro.core.ecdf import ECDF


class TestECDF:
    def test_evaluate(self):
        ecdf = ECDF(np.array([1, 2, 3, 4, 5]))
        assert ecdf.evaluate(3) == pytest.approx(0.6)
        assert ecdf.evaluate(0) == 0.0
        assert ecdf.evaluate(5) == 1.0

    def test_evaluate_array(self):
        ecdf = ECDF(np.array([1, 2, 3, 4]))
        out = ecdf.evaluate(np.array([0.5, 2.0, 10.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_quantile(self):
        ecdf = ECDF(np.arange(1, 101))
        assert ecdf.quantile(0.5) == 50
        assert ecdf.quantile(1.0) == 100
        assert ecdf.quantile(0.0) == 1

    def test_quantile_bounds(self):
        ecdf = ECDF([1.0])
        with pytest.raises(ValueError):
            ecdf.quantile(1.1)

    def test_unsorted_input_sorted(self):
        ecdf = ECDF(np.array([5, 1, 3]))
        assert ecdf.values.tolist() == [1, 3, 5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF(np.array([]))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            ECDF(np.array([1.0, np.nan]))


class TestTailThreshold:
    def test_paper_semantics(self):
        # With alpha = 0.01 over 1000 observations, the threshold is the
        # 990th order statistic; exactly the top 1% lies strictly above.
        values = np.arange(1, 1001)
        ecdf = ECDF(values)
        threshold = ecdf.tail_threshold(0.01)
        assert threshold == 990
        assert ecdf.tail_mass_above(threshold) == pytest.approx(0.01)

    def test_tail_mass_above(self):
        ecdf = ECDF(np.array([1, 1, 2, 3]))
        assert ecdf.tail_mass_above(1) == pytest.approx(0.5)
        assert ecdf.tail_mass_above(3) == 0.0

    def test_alpha_bounds(self):
        ecdf = ECDF([1.0, 2.0])
        with pytest.raises(ValueError):
            ecdf.tail_threshold(0.0)
        with pytest.raises(ValueError):
            ecdf.tail_threshold(1.0)

    def test_degenerate_sample(self):
        ecdf = ECDF(np.full(100, 7.0))
        assert ecdf.tail_threshold(0.01) == 7.0
        assert ecdf.tail_mass_above(7.0) == 0.0

    def test_summary_keys(self):
        summary = ECDF(np.arange(10)).summary()
        assert summary["n"] == 10
        assert summary["min"] == 0 and summary["max"] == 9
