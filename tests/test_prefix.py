"""Unit tests for CIDR prefixes and prefix sets."""

import numpy as np
import pytest

from repro.net.addr import parse_ip
from repro.net.prefix import (
    Prefix,
    PrefixSet,
    intersect_ranges,
    ranges_size,
    sample_distinct_offsets,
    sample_ranges,
)


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        p = Prefix.parse("192.0.2.0/24")
        assert str(p) == "192.0.2.0/24"
        assert p.size == 256
        assert p.end == p.base + 256

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            Prefix(parse_ip("192.0.2.1"), 24)

    def test_missing_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("192.0.2.0")

    def test_contains(self):
        p = Prefix.parse("10.0.0.0/8")
        assert parse_ip("10.255.255.255") in p
        assert parse_ip("11.0.0.0") not in p

    def test_contains_array(self):
        p = Prefix.parse("10.0.0.0/8")
        arr = np.array([parse_ip("10.1.2.3"), parse_ip("11.0.0.0")], dtype=np.uint32)
        assert p.contains_array(arr).tolist() == [True, False]

    def test_slash24s(self):
        assert Prefix.parse("192.0.2.0/24").slash24s() == 1
        assert Prefix.parse("10.0.0.0/16").slash24s() == 256
        assert Prefix.parse("192.0.2.0/30").slash24s() == 1

    def test_ordering(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("192.0.2.0/24")
        assert a < b


class TestPrefixSet:
    def test_membership_and_lookup(self):
        ps = PrefixSet.parse(["10.0.0.0/8", "192.0.2.0/24"])
        assert parse_ip("10.5.5.5") in ps
        assert parse_ip("192.0.2.9") in ps
        assert parse_ip("172.16.0.1") not in ps
        arr = np.array(
            [parse_ip("10.0.0.1"), parse_ip("192.0.2.1"), parse_ip("8.8.8.8")],
            dtype=np.uint32,
        )
        idx = ps.lookup(arr)
        assert idx[0] == 0 and idx[1] == 1 and idx[2] == -1
        assert ps.contains_array(arr).tolist() == [True, True, False]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            PrefixSet.parse(["10.0.0.0/8", "10.1.0.0/16"])

    def test_size_and_slash24s(self):
        ps = PrefixSet.parse(["10.0.0.0/24", "192.0.2.0/23"])
        assert ps.size == 256 + 512
        assert ps.slash24s() == 3

    def test_sample_within(self, rng):
        ps = PrefixSet.parse(["10.0.0.0/24", "192.0.2.0/24"])
        samples = ps.sample(rng, 300)
        assert np.all(ps.contains_array(samples))

    def test_sample_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            PrefixSet([]).sample(rng, 1)

    def test_ranges_shape(self):
        ps = PrefixSet.parse(["10.0.0.0/24", "192.0.2.0/24"])
        ranges = ps.ranges()
        assert ranges.shape == (2, 2)
        assert ranges_size(ranges) == 512


class TestRangeOps:
    def test_intersection_basic(self):
        a = np.array([[0, 100], [200, 300]], dtype=np.int64)
        b = np.array([[50, 250]], dtype=np.int64)
        inter = intersect_ranges(a, b)
        assert inter.tolist() == [[50, 100], [200, 250]]

    def test_intersection_disjoint(self):
        a = np.array([[0, 10]], dtype=np.int64)
        b = np.array([[20, 30]], dtype=np.int64)
        assert len(intersect_ranges(a, b)) == 0

    def test_intersection_identity(self):
        a = np.array([[5, 15], [20, 40]], dtype=np.int64)
        assert intersect_ranges(a, a).tolist() == a.tolist()

    def test_ranges_size_empty(self):
        assert ranges_size(np.empty((0, 2), dtype=np.int64)) == 0

    def test_sample_ranges_bounds(self, rng):
        ranges = np.array([[10, 20], [100, 110]], dtype=np.int64)
        out = sample_ranges(rng, ranges, 500)
        inside = ((out >= 10) & (out < 20)) | ((out >= 100) & (out < 110))
        assert np.all(inside)

    def test_sample_ranges_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_ranges(rng, np.empty((0, 2), dtype=np.int64), 1)


class TestSampleDistinct:
    def test_all_distinct(self, rng):
        out = sample_distinct_offsets(rng, 1000, 600)
        assert len(out) == 600
        assert len(np.unique(out)) == 600
        assert out.min() >= 0 and out.max() < 1000

    def test_sparse_path(self, rng):
        out = sample_distinct_offsets(rng, 10**9, 1000)
        assert len(np.unique(out)) == 1000

    def test_full_draw(self, rng):
        out = sample_distinct_offsets(rng, 10, 10)
        assert sorted(out.tolist()) == list(range(10))

    def test_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_distinct_offsets(rng, 5, 6)

    def test_zero(self, rng):
        assert len(sample_distinct_offsets(rng, 5, 0)) == 0
