"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import jaccard
from repro.core.ecdf import ECDF
from repro.core.events import build_events
from repro.core.lists import BlocklistEntry, DailyBlocklist, amelioration_curve
from repro.net.addr import format_ip, parse_ip
from repro.net.prefix import intersect_ranges, ranges_size, sample_distinct_offsets
from repro.packet import PacketBatch, Protocol

# ----------------------------------------------------------------------
# Address arithmetic
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ip_roundtrip(value):
    assert parse_ip(format_ip(value)) == value


# ----------------------------------------------------------------------
# ECDF
# ----------------------------------------------------------------------

samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=300,
)


@given(samples, st.floats(min_value=1e-4, max_value=0.5))
def test_ecdf_tail_mass_bounded_by_alpha(values, alpha):
    ecdf = ECDF(np.array(values))
    threshold = ecdf.tail_threshold(alpha)
    assert ecdf.tail_mass_above(threshold) <= alpha + 1e-12


@given(samples, st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_ecdf_quantile_monotone(values, q1, q2):
    ecdf = ECDF(np.array(values))
    lo, hi = sorted((q1, q2))
    assert ecdf.quantile(lo) <= ecdf.quantile(hi)


@given(samples)
def test_ecdf_evaluate_is_cdf(values):
    ecdf = ECDF(np.array(values))
    assert ecdf.evaluate(ecdf.values[-1]) == 1.0
    assert ecdf.evaluate(ecdf.values[0] - 1) == 0.0


# ----------------------------------------------------------------------
# Jaccard
# ----------------------------------------------------------------------

int_sets = st.sets(st.integers(min_value=0, max_value=50), max_size=30)


@given(int_sets, int_sets)
def test_jaccard_bounds_and_symmetry(a, b):
    j = jaccard(a, b)
    assert 0.0 <= j <= 1.0
    assert j == jaccard(b, a)


@given(int_sets)
def test_jaccard_identity(a):
    assert jaccard(a, a) == (1.0 if a else 0.0)


@given(int_sets, int_sets)
def test_jaccard_one_iff_equal(a, b):
    if jaccard(a, b) == 1.0:
        assert a == b and a


# ----------------------------------------------------------------------
# Event builder
# ----------------------------------------------------------------------

packet_rows = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10_000, allow_nan=False),  # ts
        st.integers(min_value=1, max_value=5),  # src
        st.integers(min_value=0, max_value=30),  # dst
        st.sampled_from([22, 23, 80]),  # dport
        st.sampled_from([Protocol.TCP_SYN.value, Protocol.UDP.value]),
    ),
    min_size=1,
    max_size=200,
)


def _batch_from_rows(rows):
    arr = np.array(rows, dtype=np.float64)
    return PacketBatch(
        ts=arr[:, 0],
        src=arr[:, 1].astype(np.uint32),
        dst=arr[:, 2].astype(np.uint32),
        dport=arr[:, 3].astype(np.uint16),
        proto=arr[:, 4].astype(np.uint8),
        ipid=np.zeros(len(rows), dtype=np.uint16),
    )


@given(packet_rows, st.floats(min_value=1.0, max_value=20_000.0))
@settings(max_examples=60)
def test_events_partition_packets(rows, timeout):
    batch = _batch_from_rows(rows)
    events = build_events(batch, timeout)
    events.validate_invariants()
    assert int(events.packets.sum()) == len(batch)


@given(packet_rows)
@settings(max_examples=40)
def test_events_monotone_in_timeout(rows):
    batch = _batch_from_rows(rows)
    few = build_events(batch, timeout=10_001.0)
    many = build_events(batch, timeout=1.0)
    assert len(few) <= len(many)


@given(packet_rows)
@settings(max_examples=40)
def test_events_sources_match_packets(rows):
    batch = _batch_from_rows(rows)
    events = build_events(batch, timeout=100.0)
    assert events.sources_of() == {int(s) for s in np.unique(batch.src)}


# ----------------------------------------------------------------------
# Range math
# ----------------------------------------------------------------------

range_arrays = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=500),
    ),
    min_size=0,
    max_size=10,
).map(
    lambda pairs: _disjoint_ranges(pairs)
)


def _disjoint_ranges(pairs):
    """Make sorted, disjoint [start, end) ranges from (gap, length)."""
    out = []
    cursor = 0
    for gap, length in pairs:
        start = cursor + gap
        out.append((start, start + length))
        cursor = start + length
    return np.array(out or np.empty((0, 2)), dtype=np.int64).reshape(-1, 2)


@given(range_arrays, range_arrays)
def test_intersection_bounded(a, b):
    inter = intersect_ranges(a, b)
    assert ranges_size(inter) <= min(ranges_size(a), ranges_size(b))


@given(range_arrays)
def test_intersection_idempotent(a):
    inter = intersect_ranges(a, a)
    assert ranges_size(inter) == ranges_size(a)


@given(
    st.integers(min_value=1, max_value=5_000),
    st.integers(min_value=0, max_value=5_000),
)
def test_sample_distinct_offsets_properties(size, count):
    count = min(count, size)
    rng = np.random.default_rng(0)
    out = sample_distinct_offsets(rng, size, count)
    assert len(out) == count
    assert len(np.unique(out)) == count
    if count:
        assert out.min() >= 0 and out.max() < size


# ----------------------------------------------------------------------
# Blocklists
# ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_amelioration_curve_monotone(packet_counts):
    entries = [
        BlocklistEntry(
            address=i,
            definitions=(1,),
            packets=p,
            asn=1,
            country="US",
            acknowledged=False,
        )
        for i, p in enumerate(packet_counts)
    ]
    blocklist = DailyBlocklist(day=0, entries=entries)
    curve = amelioration_curve(blocklist)
    if sum(packet_counts) == 0:
        assert np.all(curve == 0)
    else:
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == 1.0


# ----------------------------------------------------------------------
# PacketBatch
# ----------------------------------------------------------------------


@given(packet_rows, packet_rows)
@settings(max_examples=40)
def test_concat_length_additive(rows_a, rows_b):
    a, b = _batch_from_rows(rows_a), _batch_from_rows(rows_b)
    assert len(PacketBatch.concat([a, b])) == len(a) + len(b)


@given(packet_rows)
@settings(max_examples=40)
def test_sort_preserves_multiset(rows):
    batch = _batch_from_rows(rows)
    sorted_batch = batch.sorted_by_time()
    assert sorted(batch.ts.tolist()) == sorted_batch.ts.tolist()
    assert sorted(batch.dst.tolist()) == sorted(sorted_batch.dst.tolist())
