"""Bit-identity of bulk span-stream derivation vs ``default_rng``.

``repro.scanners.streams`` re-implements numpy's ``SeedSequence``
entropy mixing as vectorized batch arithmetic; every windowed-emission
stream now flows through it.  These tests pin the contract that makes
that safe: for any key tuple, the batched chain produces *exactly* the
``np.random.default_rng(tuple)`` stream — same state words, same
draws, in every dispatch regime (vectorized, grouped by word layout,
scalar fallback).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scanners.streams import (
    _BATCH_THRESHOLD,
    _PrecomputedSeed,
    derive_span_words,
    generator_from_words,
    seedseq_state64,
    span_generators,
)


def _scalar_words(keys):
    return np.stack(
        [
            np.random.SeedSequence(tuple(int(v) for v in row)).generate_state(
                4, np.uint64
            )
            for row in keys
        ]
    )


small = st.integers(min_value=0, max_value=2**32 - 1)
wide = st.integers(min_value=0, max_value=2**64 - 1)


@given(
    st.lists(
        st.tuples(small, small, small, small), min_size=1, max_size=32
    )
)
@settings(max_examples=50, deadline=None)
def test_derive_span_words_matches_seedsequence(keys):
    np.testing.assert_array_equal(derive_span_words(keys), _scalar_words(keys))


@given(st.lists(st.tuples(wide, small, wide, small), min_size=4, max_size=24))
@settings(max_examples=50, deadline=None)
def test_multiword_keys_match(keys):
    """Values over 32 bits split into entropy words like SeedSequence."""
    np.testing.assert_array_equal(derive_span_words(keys), _scalar_words(keys))


def test_mixed_word_layouts_in_one_batch():
    """Rows of different word widths are grouped, derived, and
    scattered back into their original positions."""
    keys = [
        (7, 1, 0, 0),
        (2**33 + 5, 1, 0, 1),
        (9, 1, 2**40, 2),
        (0, 0, 0, 0),
    ] * 3
    np.testing.assert_array_equal(derive_span_words(keys), _scalar_words(keys))


def test_empty_batch():
    words = derive_span_words([])
    assert words.shape == (0, 4)
    assert words.dtype == np.uint64


def test_small_batch_scalar_fallback_identical():
    keys = [(3, 1, 4, 1)] * (_BATCH_THRESHOLD - 1)
    np.testing.assert_array_equal(derive_span_words(keys), _scalar_words(keys))


def test_seedseq_state64_variable_entropy_width():
    for k in (1, 2, 3, 4, 5, 7):
        rows = np.arange(6 * k, dtype=np.uint32).reshape(6, k)
        expect = np.stack(
            [
                np.random.SeedSequence(
                    tuple(int(v) for v in row)
                ).generate_state(4, np.uint64)
                for row in rows
            ]
        )
        np.testing.assert_array_equal(seedseq_state64(rows, 4), expect)


@given(st.tuples(wide, small, small, small))
@settings(max_examples=40, deadline=None)
def test_generator_stream_bit_identical(key):
    """The full chain — words → PCG64 shim → Generator — replays the
    exact ``default_rng`` stream, across draw kinds."""
    (ours,) = span_generators([key])
    ref = np.random.default_rng(tuple(int(v) for v in key))
    np.testing.assert_array_equal(ours.random(16), ref.random(16))
    np.testing.assert_array_equal(
        ours.integers(0, 2**32, 8), ref.integers(0, 2**32, 8)
    )
    assert ours.poisson(12.5) == ref.poisson(12.5)
    np.testing.assert_array_equal(
        ours.permutation(32), ref.permutation(32)
    )


def test_generator_from_words_matches_span_generators():
    keys = [(11, 22, i, j) for i in range(3) for j in range(4)]
    words = derive_span_words(keys)
    for i, key in enumerate(keys):
        a = generator_from_words(words[i]).random(4)
        b = np.random.default_rng(key).random(4)
        np.testing.assert_array_equal(a, b)


def test_precomputed_seed_rejects_foreign_requests():
    shim = _PrecomputedSeed(np.zeros(4, dtype=np.uint64))
    with pytest.raises(NotImplementedError):
        shim.generate_state(4, np.uint32)
    with pytest.raises(NotImplementedError):
        shim.generate_state(2, np.uint64)


def test_negative_key_raises_like_seedsequence():
    with pytest.raises(ValueError):
        derive_span_words([(1, 2, 3, 4)] * 4 + [(-1, 0, 0, 0)])
