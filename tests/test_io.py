"""Unit tests for event/flow serialization."""

import numpy as np
import pytest

from repro.core.events import EventTable
from repro.flows.netflow import FlowTable
from repro.io.eventlog import load_events_csv, save_events_csv
from repro.io.flowlog import load_flows_csv, save_flows_csv
from repro.core.faults import ChunkCorruptionError
from repro.core.telemetry import RunHealth
from repro.io.packetlog import (
    MANIFEST_NAME,
    ChunkWriter,
    iter_packets_chunked,
    load_manifest,
    load_packets_npz,
    packets_from_npz_bytes,
    packets_to_npz_bytes,
    save_packets_chunked,
    save_packets_npz,
    verify_chunks,
)
from repro.packet import COLUMNS, PacketBatch, Protocol


@pytest.fixture()
def events():
    return EventTable(
        src=np.array([167_772_161, 3_232_235_777], dtype=np.uint32),
        dport=np.array([80, 6_379], dtype=np.uint16),
        proto=np.array([6, 6], dtype=np.uint8),
        start=np.array([0.5, 100.25]),
        end=np.array([10.75, 200.0]),
        packets=np.array([12, 3_456], dtype=np.int64),
        unique_dsts=np.array([10, 3_000], dtype=np.int64),
    )


@pytest.fixture()
def flows():
    return FlowTable(
        router=np.array([0, 2], dtype=np.int8),
        day=np.array([0, 5], dtype=np.int32),
        src=np.array([167_772_161, 167_772_162], dtype=np.uint32),
        dport=np.array([23, 443], dtype=np.uint16),
        proto=np.array([6, 6], dtype=np.uint8),
        packets=np.array([4_000, 9_000], dtype=np.int64),
        sampled=np.array([4, 9], dtype=np.int64),
    )


class TestEventLog:
    def test_roundtrip(self, events, tmp_path):
        path = tmp_path / "events.csv"
        save_events_csv(events, path)
        loaded = load_events_csv(path)
        assert len(loaded) == 2
        assert loaded.src.tolist() == events.src.tolist()
        assert loaded.packets.tolist() == events.packets.tolist()
        assert loaded.start.tolist() == events.start.tolist()

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_events_csv(EventTable.empty(), path)
        assert len(load_events_csv(path)) == 0

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_events_csv(path)

    def test_human_readable_ips(self, events, tmp_path):
        path = tmp_path / "events.csv"
        save_events_csv(events, path)
        content = path.read_text()
        assert "10.0.0.1" in content


class TestChunkedPacketLog:
    @pytest.fixture()
    def batch(self):
        rng = np.random.default_rng(8)
        n = 4_000
        return PacketBatch(
            ts=np.sort(rng.random(n) * 30_000.0),
            src=rng.integers(1, 50, n).astype(np.uint32),
            dst=rng.integers(0, 256, n).astype(np.uint32),
            dport=np.full(n, 23, dtype=np.uint16),
            proto=np.full(n, Protocol.TCP_SYN.value, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        )

    def test_roundtrip(self, batch, tmp_path):
        n_files = save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        assert n_files == len(list((tmp_path / "cap").glob("chunk-*.npz")))
        chunks = list(iter_packets_chunked(tmp_path / "cap"))
        assert len(chunks) == n_files
        restored = PacketBatch.concat(chunks)
        assert len(restored) == len(batch)
        assert np.array_equal(restored.ts, batch.ts)
        assert np.array_equal(restored.src, batch.src)
        assert np.array_equal(restored.dst, batch.dst)

    def test_chunks_are_time_ordered(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        previous_end = -np.inf
        for chunk in iter_packets_chunked(tmp_path / "cap"):
            assert float(chunk.ts.min()) >= previous_end
            previous_end = float(chunk.ts.max())

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_packets_chunked(tmp_path / "nope"))

    def test_empty_directory(self, tmp_path):
        (tmp_path / "cap").mkdir()
        with pytest.raises(ValueError, match="no chunk archives"):
            list(iter_packets_chunked(tmp_path / "cap"))

    def test_gap_in_chunk_sequence(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        paths = sorted((tmp_path / "cap").glob("chunk-*.npz"))
        assert len(paths) > 2
        paths[1].unlink()
        with pytest.raises(ValueError, match="chunk-00001.npz"):
            list(iter_packets_chunked(tmp_path / "cap"))

    def test_malformed_chunk_name(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        rogue = tmp_path / "cap" / "chunk-extra.npz"
        rogue.write_bytes(b"")
        with pytest.raises(ValueError, match="chunk-extra.npz"):
            list(iter_packets_chunked(tmp_path / "cap"))

    def test_file_instead_of_directory(self, tmp_path):
        target = tmp_path / "cap"
        target.write_bytes(b"")
        with pytest.raises(FileNotFoundError, match="not a chunk directory"):
            list(iter_packets_chunked(target))


def _one_packet():
    return PacketBatch(
        ts=np.array([12.5]),
        src=np.array([7], dtype=np.uint32),
        dst=np.array([3], dtype=np.uint32),
        dport=np.array([443], dtype=np.uint16),
        proto=np.array([Protocol.TCP_SYN.value], dtype=np.uint8),
        ipid=np.array([54321], dtype=np.uint16),
    )


class TestPacketNpzBytes:
    """The byte-level wire format: edge cases the ingest path must eat."""

    def _roundtrip(self, batch):
        restored = packets_from_npz_bytes(packets_to_npz_bytes(batch))
        assert len(restored) == len(batch)
        for name in COLUMNS:
            a, b = getattr(batch, name), getattr(restored, name)
            assert np.array_equal(a, b)
            assert a.dtype == b.dtype
        return restored

    def test_empty_batch_round_trips(self):
        self._roundtrip(PacketBatch.empty())

    def test_single_packet_round_trips(self):
        self._roundtrip(_one_packet())

    def test_zero_packet_window_round_trips(self):
        # A batch confined to [100, 200) sliced at a window it does not
        # touch — the "zero-packet window" the chunked writer can emit.
        batch = _one_packet().time_slice(0.0, 10.0)
        assert len(batch) == 0
        self._roundtrip(batch)

    def test_shared_memory_views_serialize_unchanged(self):
        # Read-only shared-memory views are valid savez inputs: the two
        # columnar surfaces convert without reshaping or copying first.
        shm = pytest.importorskip("repro.io.shm")
        if not shm.shared_memory_available():
            pytest.skip("platform has no usable shared memory")
        batch = _one_packet()
        handle, lease = shm.share_batch(batch)
        with lease:
            self._roundtrip(handle.load())

    def test_truncated_bytes_name_the_label(self):
        data = packets_to_npz_bytes(_one_packet())
        with pytest.raises(ChunkCorruptionError, match="tenant-3"):
            packets_from_npz_bytes(data[: len(data) // 2], label="tenant-3")

    def test_foreign_npz_rejected(self):
        import io as _io

        buffer = _io.BytesIO()
        np.savez(buffer, magic=np.array("not-a-packet-log"))
        with pytest.raises(ChunkCorruptionError, match="magic"):
            packets_from_npz_bytes(buffer.getvalue())


class TestCrashSafeChunkIO:
    """Atomic writes, digest manifests, and corruption handling."""

    @pytest.fixture()
    def batch(self):
        rng = np.random.default_rng(9)
        n = 3_000
        return PacketBatch(
            ts=np.sort(rng.random(n) * 18_000.0),
            src=rng.integers(1, 40, n).astype(np.uint32),
            dst=rng.integers(0, 256, n).astype(np.uint32),
            dport=np.full(n, 23, dtype=np.uint16),
            proto=np.full(n, Protocol.TCP_SYN.value, dtype=np.uint8),
            ipid=np.zeros(n, dtype=np.uint16),
        )

    def test_atomic_save_leaves_no_tmp(self, batch, tmp_path):
        digest = save_packets_npz(batch, tmp_path / "one.npz")
        assert isinstance(digest, str) and len(digest) == 64
        assert [p.name for p in tmp_path.iterdir()] == ["one.npz"]

    def test_truncated_archive_names_file(self, batch, tmp_path):
        path = tmp_path / "one.npz"
        save_packets_npz(batch, path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(ChunkCorruptionError, match="one.npz"):
            load_packets_npz(path)

    def test_digest_mismatch_detected(self, batch, tmp_path):
        # A *valid* archive holding the wrong content: only the manifest
        # digest can catch the swap.
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        paths = sorted((tmp_path / "cap").glob("chunk-*.npz"))
        paths[0].write_bytes(paths[1].read_bytes())
        with pytest.raises(ChunkCorruptionError, match="manifest"):
            list(iter_packets_chunked(tmp_path / "cap"))

    def test_manifest_written_and_complete(self, batch, tmp_path):
        n = save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        manifest = load_manifest(tmp_path / "cap")
        assert manifest["complete"] is True
        assert len(manifest["chunks"]) == n

    def test_writer_dying_between_chunks_reports_valid_set(
        self, batch, tmp_path
    ):
        """Crash-consistency: a writer dying between chunk N and N+1
        leaves a manifest certifying exactly chunks 0..N."""
        writer = ChunkWriter(tmp_path / "cap", 3_600.0)
        written = []
        for _, _, chunk in batch.iter_time_chunks(3_600.0):
            if len(chunk) == 0:
                continue
            written.append(writer.write(chunk))
            if len(written) == 3:
                break  # simulated death: no close(), no further chunks
        manifest = load_manifest(tmp_path / "cap")
        assert manifest["complete"] is False
        assert sorted(manifest["chunks"]) == [p.name for p in written]
        valid, corrupt = verify_chunks(tmp_path / "cap")
        assert valid == written
        assert corrupt == []

    def test_chunk_present_but_unlisted_is_accepted(self, batch, tmp_path):
        # Writer died after the chunk rename, before the manifest
        # rewrite: the archive is complete (atomic rename), so readers
        # accept it on a successful parse.
        writer = ChunkWriter(tmp_path / "cap", 3_600.0)
        chunks = [
            c for _, _, c in batch.iter_time_chunks(3_600.0) if len(c)
        ]
        writer.write(chunks[0])
        save_packets_npz(chunks[1], tmp_path / "cap" / "chunk-00001.npz")
        loaded = list(iter_packets_chunked(tmp_path / "cap"))
        assert len(loaded) == 2
        assert np.array_equal(loaded[1].ts, chunks[1].ts)

    def test_quarantine_skips_and_accounts(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        paths = sorted((tmp_path / "cap").glob("chunk-*.npz"))
        paths[2].write_bytes(b"damaged beyond repair")
        health = RunHealth()
        loaded = list(
            iter_packets_chunked(
                tmp_path / "cap", on_corrupt="quarantine", health=health
            )
        )
        assert len(loaded) == len(paths) - 1
        assert health.quarantined_chunks == [str(paths[2])]
        valid, corrupt = verify_chunks(tmp_path / "cap")
        assert corrupt == [paths[2]]
        assert len(valid) == len(paths) - 1

    def test_invalid_on_corrupt_mode(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        with pytest.raises(ValueError, match="on_corrupt"):
            list(iter_packets_chunked(tmp_path / "cap", on_corrupt="ignore"))

    def test_damaged_manifest_raises(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        (tmp_path / "cap" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ChunkCorruptionError, match=MANIFEST_NAME):
            list(iter_packets_chunked(tmp_path / "cap"))

    def test_directory_without_manifest_still_reads(self, batch, tmp_path):
        save_packets_chunked(batch, tmp_path / "cap", 3_600.0)
        (tmp_path / "cap" / MANIFEST_NAME).unlink()
        restored = PacketBatch.concat(
            list(iter_packets_chunked(tmp_path / "cap"))
        )
        assert len(restored) == len(batch)


class TestFlowLog:
    def test_roundtrip(self, flows, tmp_path):
        path = tmp_path / "flows.csv"
        save_flows_csv(flows, path)
        loaded = load_flows_csv(path)
        assert len(loaded) == 2
        assert loaded.router.tolist() == flows.router.tolist()
        assert loaded.packets.tolist() == flows.packets.tolist()
        assert loaded.src.tolist() == flows.src.tolist()

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_flows_csv(FlowTable(), path)
        assert len(load_flows_csv(path)) == 0

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x\n1\n")
        with pytest.raises(ValueError):
            load_flows_csv(path)
