"""Unit tests for the acknowledged-scanner registry."""

import numpy as np
import pytest

from repro.labeling.acknowledged import (
    AckedOrg,
    AcknowledgedRegistry,
    default_org_specs,
)


def build_registry(rng, list_coverage=0.5, ptr_coverage=1.0, fleet=20):
    orgs = (
        AckedOrg("alpha", "Alpha Labs", "alpha", list_coverage, ptr_coverage, 1.0),
        AckedOrg("beta", "Beta Inc", "beta", list_coverage, ptr_coverage, 1.0),
    )
    fleets = {
        "alpha": np.arange(1_000, 1_000 + fleet, dtype=np.uint32),
        "beta": np.arange(2_000, 2_000 + fleet, dtype=np.uint32),
    }
    return AcknowledgedRegistry.build(orgs, fleets, rng)


class TestOrgSpecs:
    def test_default_count(self):
        assert len(default_org_specs()) == 36
        assert len(default_org_specs(20)) == 20

    def test_unique_slugs_and_keywords(self):
        orgs = default_org_specs()
        assert len({o.slug for o in orgs}) == len(orgs)
        assert len({o.keyword for o in orgs}) == len(orgs)

    def test_some_orgs_not_aggressive(self):
        orgs = default_org_specs()
        assert any(not o.aggressive for o in orgs)
        assert sum(o.aggressive for o in orgs) > len(orgs) // 2

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            AckedOrg("x", "X", "x", list_coverage=1.5)
        with pytest.raises(ValueError):
            AckedOrg("x", "X", "x", ptr_coverage=-0.1)


class TestRegistry:
    def test_published_subset_of_fleet(self, rng):
        registry = build_registry(rng)
        assert registry.published_ips() <= registry.all_fleet_ips()

    def test_list_coverage_statistics(self, rng):
        registry = build_registry(rng, list_coverage=0.5, fleet=500)
        share = len(registry.published_ips()) / len(registry.all_fleet_ips())
        assert 0.4 < share < 0.6

    def test_ip_match_precedence(self, rng):
        registry = build_registry(rng, list_coverage=1.0, ptr_coverage=1.0)
        match = registry.match(1_005)
        assert match == ("alpha", "ip")

    def test_domain_match_when_unlisted(self, rng):
        registry = build_registry(rng, list_coverage=0.0, ptr_coverage=1.0)
        match = registry.match(2_003)
        assert match == ("beta", "domain")

    def test_no_match_for_stranger(self, rng):
        registry = build_registry(rng)
        assert registry.match(999_999) is None

    def test_no_match_without_ptr_or_listing(self, rng):
        registry = build_registry(rng, list_coverage=0.0, ptr_coverage=0.0)
        assert registry.match(1_001) is None

    def test_match_many_consistent(self, rng):
        registry = build_registry(rng, list_coverage=0.3, ptr_coverage=0.9, fleet=100)
        candidates = list(registry.all_fleet_ips()) + [9_999_999]
        bulk = registry.match_many(candidates)
        for addr in candidates:
            single = registry.match(addr)
            if single is None:
                assert addr not in bulk
            else:
                assert bulk[addr] == single

    def test_org_of_ground_truth(self, rng):
        registry = build_registry(rng)
        assert registry.org_of(1_000) == "alpha"
        assert registry.org_of(2_000) == "beta"
        assert registry.org_of(5) is None

    def test_empty_fleet_handled(self, rng):
        orgs = (AckedOrg("ghost", "Ghost", "ghost"),)
        registry = AcknowledgedRegistry.build(orgs, {}, rng)
        assert registry.published["ghost"] == set()
        assert registry.match(123) is None
